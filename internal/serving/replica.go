package serving

import (
	"fmt"

	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
)

// active is one request resident in a replica's continuous batch.
type active struct {
	id        int
	produced  int // decode tokens emitted so far
	prefilled bool
}

// replica is one model instance on one GPU: a policy-ordered admission
// queue feeding a continuous batch. Admission reserves the request's whole
// KV footprint (prompt + all output tokens) so a request admitted once can
// always run to completion — no mid-flight eviction, no deadlock.
type replica struct {
	c    *Cluster
	idx  int
	node network.NodeID

	queue    []int // request IDs, policy order
	batch    []active
	kvUsed   float64
	kvBudget float64
	busy     bool

	// accounting
	steps          int
	batchOccupancy int // Σ batch sizes over steps
	busySec        float64
	kvPeak         float64
	queuePeak      int
	served         int
	// outstandingTokens drives least-loaded request routing.
	outstandingTokens int
}

// kvNeed is the full KV reservation for a request: every prompt and output
// token stays cached until the request completes.
func (r *replica) kvNeed(req *Request) float64 {
	return float64(req.PromptTokens+req.OutputTokens) * r.c.cost.kvPerToken
}

// enqueue admits an arrived request to the policy queue and starts the
// replica if idle.
func (r *replica) enqueue(id int, now sim.VTime) error {
	r.queue = insertByPolicy(r.queue, id, r.c.reqs, r.c.pol)
	if len(r.queue) > r.queuePeak {
		r.queuePeak = len(r.queue)
	}
	return r.maybeStart(now)
}

// admit moves queued requests into the batch while the batch cap and the KV
// budget allow. Head-of-line blocking is strict: if the head request's
// reservation does not fit, nothing behind it is considered — that keeps
// the policy order meaningful (SJF cannot be starved into FIFO by
// accident).
func (r *replica) admit() error {
	for len(r.queue) > 0 && len(r.batch) < r.c.cfg.MaxBatch {
		id := r.queue[0]
		need := r.kvNeed(&r.c.reqs[id])
		if r.kvUsed+need > r.kvBudget {
			break
		}
		r.kvUsed += need
		if r.kvUsed > r.kvPeak {
			r.kvPeak = r.kvUsed
		}
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		r.batch = append(r.batch, active{id: id})
	}
	if len(r.batch) > r.c.cfg.MaxBatch {
		return fmt.Errorf("serving: replica %d batch %d exceeds cap %d",
			r.idx, len(r.batch), r.c.cfg.MaxBatch)
	}
	if r.kvUsed < 0 || r.kvUsed > r.kvBudget {
		return fmt.Errorf("serving: replica %d KV accounting out of range: "+
			"%.0f of %.0f bytes", r.idx, r.kvUsed, r.kvBudget)
	}
	return nil
}

// maybeStart admits and launches the next batched step if the replica is
// idle and has work.
func (r *replica) maybeStart(now sim.VTime) error {
	if r.busy {
		return nil
	}
	if err := r.admit(); err != nil {
		return err
	}
	if len(r.batch) == 0 {
		return nil
	}
	// Price the step: prefill for newly admitted requests, one decode token
	// for everything already prefilled.
	var w stepwork
	for i := range r.batch {
		a := &r.batch[i]
		req := &r.c.reqs[a.id]
		if !a.prefilled {
			r.c.cost.addPrefill(&w, req.PromptTokens)
		} else {
			r.c.cost.addDecode(&w, req.PromptTokens+a.produced)
		}
	}
	nominal := r.c.cost.stepTime(w)
	dur := nominal
	if r.c.Stretch != nil {
		if f := r.c.Stretch(r.idx, now); f != 1 {
			dur = sim.VTime(float64(dur) * f)
		}
	}
	r.busy = true
	start := now
	sim.ScheduleFunc(r.c.eng, now+dur, func(end sim.VTime) error {
		return r.stepDone(start, end, nominal)
	})
	return nil
}

// stepDone accounts a finished batched step: every prefilled request emits
// its first token, every decoding request one more; completed requests free
// their KV reservation and ship their response to the host.
func (r *replica) stepDone(start, end sim.VTime, nominal sim.VTime) error {
	r.busy = false
	r.steps++
	r.batchOccupancy += len(r.batch)
	r.busySec += (end - start).Seconds()
	r.c.observeStep(r.idx, len(r.batch), start, end, nominal)

	keep := r.batch[:0]
	for i := range r.batch {
		a := r.batch[i]
		req := &r.c.reqs[a.id]
		st := &r.c.stats[a.id]
		if !a.prefilled {
			a.prefilled = true
			a.produced = 1 // prefill emits the first token
			st.firstToken = end
		} else {
			a.produced++
		}
		r.c.generated++
		r.outstandingTokens--
		if a.produced >= req.OutputTokens {
			r.kvUsed -= r.kvNeed(req)
			if r.kvUsed < -1e-6 {
				return fmt.Errorf(
					"serving: replica %d KV went negative (%.0f bytes)",
					r.idx, r.kvUsed)
			}
			r.served++
			r.outstandingTokens -= req.PromptTokens
			r.c.ship(r, a.id, end)
		} else {
			keep = append(keep, a)
		}
	}
	// Zero the dropped tail so recycled slots don't alias stale requests.
	for i := len(keep); i < len(r.batch); i++ {
		r.batch[i] = active{}
	}
	r.batch = keep
	return r.maybeStart(end)
}

// ship sends a completed request's response tokens back to the host; the
// request is finished when the transfer lands.
func (c *Cluster) ship(r *replica, id int, now sim.VTime) {
	bytes := float64(c.reqs[id].OutputTokens) * tokenWireBytes
	c.net.Send(r.node, c.host, bytes, func(end sim.VTime) {
		c.finish(id, end)
	})
}

// notify reports a synthesized per-step task to the registered observers:
// the telemetry collector sees it as compute occupancy on the replica's
// GPU, the span recorder as a span on that GPU's track.
func (c *Cluster) observeStep(idx, batch int, start, end, nominal sim.VTime) {
	if len(c.obs) == 0 {
		return
	}
	t := task.Task{
		ID:       -1,
		Kind:     task.Compute,
		Label:    fmt.Sprintf("serve-step-b%d", batch),
		GPU:      idx,
		Duration: nominal,
	}
	c.obs.TaskDone(&t, start, end)
}
