// Package serving adds an open-loop request-level inference-serving layer
// on top of the internal/sim event engine. Seeded Poisson (or trace-file)
// arrivals feed a pluggable scheduler — FIFO, priority, or shortest-job-
// first — that forms continuous batches per model replica; each request
// runs one prefill step and then iterative decode steps with KV-cache
// accounting against the replica GPU's memory, and its response ships back
// to the host over the network model.
//
// Everything is deterministic: randomness only enters through the seeded
// workload generator, request routing and queue order break ties by request
// ID, and observers (telemetry, span traces) record without scheduling — so
// a serving run carries a replayable EventDigest exactly like a training
// run.
package serving

import (
	"fmt"

	"triosim/internal/gpu"
	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/spantrace"
	"triosim/internal/task"
)

// tokenWireBytes is the wire size of one token ID (the serving layer moves
// token streams, not activations).
const tokenWireBytes = 4

// Config describes one serving run.
type Config struct {
	// Model is a zoo transformer name (gpt2, bert, t5small, flant5small,
	// llama32-1b).
	Model string `json:"model"`
	// Replicas is the number of model instances, one per GPU, default all
	// GPUs in the topology.
	Replicas int `json:"replicas,omitempty"`
	// Scheduler is the admission policy: fifo (default), priority, or sjf.
	Scheduler string `json:"scheduler,omitempty"`
	// MaxBatch caps the continuous batch per replica (default 8).
	MaxBatch int `json:"max_batch,omitempty"`
	// Arrivals parameterizes the synthetic workload; ignored when Workload
	// is set explicitly.
	Arrivals ArrivalConfig `json:"arrivals"`
	// Workload, when non-nil, is the explicit request trace (see
	// LoadWorkload). Requests must be sorted by arrival; IDs are
	// renumbered 0..n-1.
	Workload []Request `json:"workload,omitempty"`
}

// reqStat tracks one request's observed lifecycle.
type reqStat struct {
	replica    int
	arrival    sim.VTime
	firstToken sim.VTime
	done       sim.VTime
	finished   bool
}

// Cluster is a running serving simulation: per-GPU replicas fed by one
// arrival source through the host link.
type Cluster struct {
	eng  sim.Engine
	net  network.Network
	cfg  Config
	pol  Policy
	cost *costModel
	host network.NodeID
	reps []*replica
	obs  task.Observers

	// Stretch optionally scales step durations per replica GPU, sampled at
	// step start (fault injection's straggler model). Nil means factor 1.
	Stretch func(gpu int, at sim.VTime) float64

	// Spans, when set, receives one request-lifetime span per completed
	// request on a per-replica "requests.gpuN" track.
	Spans *spantrace.Recorder

	reqs      []Request
	stats     []reqStat
	completed int
	generated int
}

// New builds a serving cluster over an engine, a network, and a GPU spec.
// The workload is materialized here (generated from cfg.Arrivals unless
// cfg.Workload is set) and validated: every request must fit a replica's KV
// budget on its own, or the run could stall.
func New(eng sim.Engine, net network.Network, topo *network.Topology,
	spec *gpu.Spec, cfg Config) (*Cluster, error) {
	gpus := topo.GPUs()
	if cfg.Replicas == 0 {
		cfg.Replicas = len(gpus)
	}
	if cfg.Replicas < 1 || cfg.Replicas > len(gpus) {
		return nil, fmt.Errorf("serving: %d replicas for %d GPUs",
			cfg.Replicas, len(gpus))
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("serving: max batch %d", cfg.MaxBatch)
	}
	pol, err := PolicyByName(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	cfg.Scheduler = pol.Name()
	cost, err := newCostModel(cfg.Model, spec)
	if err != nil {
		return nil, err
	}
	budget := cost.kvBudget()
	if budget <= 0 {
		return nil, fmt.Errorf(
			"serving: %s weights (%.1f GiB) exceed %s memory",
			cfg.Model, cost.weightBytes/(1<<30), spec.Name)
	}

	reqs := cfg.Workload
	if reqs == nil {
		reqs, err = GenerateWorkload(cfg.Arrivals)
		if err != nil {
			return nil, err
		}
	} else {
		reqs = append([]Request(nil), reqs...)
	}
	var prev sim.VTime
	for i := range reqs {
		r := &reqs[i]
		r.ID = i
		if r.Arrival.Before(prev) {
			return nil, fmt.Errorf(
				"serving: request %d arrives at %v before its predecessor",
				i, r.Arrival)
		}
		prev = r.Arrival
		if r.PromptTokens < 1 || r.OutputTokens < 1 {
			return nil, fmt.Errorf(
				"serving: request %d needs positive token counts", i)
		}
		need := float64(r.PromptTokens+r.OutputTokens) * cost.kvPerToken
		if need > budget {
			return nil, fmt.Errorf(
				"serving: request %d KV need %.0f bytes exceeds budget %.0f",
				i, need, budget)
		}
	}

	c := &Cluster{
		eng: eng, net: net, cfg: cfg, pol: pol, cost: cost,
		host:  topo.Host(),
		reqs:  reqs,
		stats: make([]reqStat, len(reqs)),
	}
	for i := 0; i < cfg.Replicas; i++ {
		c.reps = append(c.reps, &replica{
			c: c, idx: i, node: gpus[i], kvBudget: budget,
		})
	}
	return c, nil
}

// Observe registers a task observer for the synthesized per-step compute
// tasks; call before Start. Observers record only — registering any number
// of them leaves the event schedule (and the replay digest) unchanged.
func (c *Cluster) Observe(o task.Observer) {
	c.obs = append(c.obs, o)
}

// Start arms the arrival source. Each arrival routes to the least-loaded
// replica (fewest outstanding tokens, ties to the lowest index) and the
// prompt ships host→GPU before the request can be queued.
func (c *Cluster) Start() {
	i := 0
	sim.Feed(c.eng, func() (sim.VTime, func(sim.VTime) error, bool) {
		if i >= len(c.reqs) {
			return 0, nil, false
		}
		id := i
		i++
		return c.reqs[id].Arrival, func(now sim.VTime) error {
			return c.arrive(id, now)
		}, true
	})
}

// arrive routes one request and ships its prompt to the chosen replica.
func (c *Cluster) arrive(id int, now sim.VTime) error {
	req := &c.reqs[id]
	best := c.reps[0]
	for _, r := range c.reps[1:] {
		if r.outstandingTokens < best.outstandingTokens {
			best = r
		}
	}
	best.outstandingTokens += req.PromptTokens + req.OutputTokens
	c.stats[id].replica = best.idx
	c.stats[id].arrival = now
	bytes := float64(req.PromptTokens) * tokenWireBytes
	c.net.Send(c.host, best.node, bytes, func(end sim.VTime) {
		// Admission errors surface through the engine: a failed invariant
		// aborts the run rather than silently dropping the request.
		if err := best.enqueue(id, end); err != nil {
			c.fail(err)
		}
	})
	return nil
}

// fail schedules an immediately failing event so invariant violations in
// network callbacks (which cannot return errors) stop the engine.
func (c *Cluster) fail(err error) {
	sim.ScheduleFunc(c.eng, c.eng.CurrentTime(),
		func(sim.VTime) error { return err })
}

// finish marks a request complete once its response lands on the host.
func (c *Cluster) finish(id int, now sim.VTime) {
	st := &c.stats[id]
	if st.finished {
		c.fail(fmt.Errorf("serving: request %d finished twice", id))
		return
	}
	st.finished = true
	st.done = now
	c.completed++
	if c.Spans != nil {
		req := &c.reqs[id]
		c.Spans.AddSpan(
			fmt.Sprintf("requests.gpu%d", st.replica),
			fmt.Sprintf("req%d-p%d-o%d", id, req.PromptTokens,
				req.OutputTokens),
			spantrace.Request, st.arrival, now)
	}
}

// Metrics summarizes the finished run. It errors if any request never
// completed (the engine drained without serving everything — a scheduling
// bug, since admission reserves full KV footprints).
func (c *Cluster) Metrics() (*Metrics, error) {
	m := &Metrics{
		Scheduler: c.cfg.Scheduler,
		Replicas:  len(c.reps),
		MaxBatch:  c.cfg.MaxBatch,
		Requests:  len(c.reqs),
		Completed: c.completed,
	}
	if c.completed != len(c.reqs) {
		return nil, fmt.Errorf("serving: %d of %d requests incomplete",
			len(c.reqs)-c.completed, len(c.reqs))
	}
	if len(c.reqs) == 0 {
		return m, nil
	}

	first := c.stats[0].arrival
	var last sim.VTime
	lat := make([]float64, 0, len(c.reqs))
	ttft := make([]float64, 0, len(c.reqs))
	m.PerRequest = make([]RequestMetric, len(c.reqs))
	for i := range c.reqs {
		req, st := &c.reqs[i], &c.stats[i]
		if st.done.After(last) {
			last = st.done
		}
		lat = append(lat, (st.done - st.arrival).Seconds())
		ttft = append(ttft, (st.firstToken - st.arrival).Seconds())
		m.PerRequest[i] = RequestMetric{
			ID:            i,
			Replica:       st.replica,
			ArrivalSec:    st.arrival.Seconds(),
			FirstTokenSec: st.firstToken.Seconds(),
			DoneSec:       st.done.Seconds(),
			PromptTokens:  req.PromptTokens,
			OutputTokens:  req.OutputTokens,
		}
	}
	m.MakespanSec = (last - first).Seconds()
	span := (c.reqs[len(c.reqs)-1].Arrival - c.reqs[0].Arrival).Seconds()
	if span > 0 {
		m.OfferedRPS = float64(len(c.reqs)-1) / span
	}
	if m.MakespanSec > 0 {
		m.ThroughputRPS = float64(c.completed) / m.MakespanSec
		m.TokensPerSec = float64(c.generated) / m.MakespanSec
	}
	m.Latency = summarize(lat)
	m.TTFT = summarize(ttft)
	m.GeneratedTokens = c.generated

	for _, r := range c.reps {
		rs := ReplicaStat{
			Replica:     r.idx,
			Served:      r.served,
			Steps:       r.steps,
			BusySec:     r.busySec,
			KVPeakBytes: r.kvPeak,
			QueuePeak:   r.queuePeak,
		}
		if r.steps > 0 {
			rs.MeanBatch = float64(r.batchOccupancy) / float64(r.steps)
		}
		if m.MakespanSec > 0 {
			rs.Utilization = r.busySec / m.MakespanSec
		}
		m.PerReplica = append(m.PerReplica, rs)
		m.Steps += r.steps
	}
	var occ int
	for _, r := range c.reps {
		occ += r.batchOccupancy
	}
	if m.Steps > 0 {
		m.MeanBatch = float64(occ) / float64(m.Steps)
		m.BatchingEfficiency = m.MeanBatch / float64(m.MaxBatch)
	}
	for _, r := range c.reps {
		if r.kvPeak > m.KVPeakBytes {
			m.KVPeakBytes = r.kvPeak
		}
	}
	return m, nil
}
