package serving

import (
	"bytes"
	"encoding/json"
	"testing"

	"triosim/internal/gpu"
	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/spantrace"
	"triosim/internal/task"
)

// testTopo builds a small switch topology for direct cluster runs.
func testTopo(gpus int) *network.Topology {
	return network.Switch(network.Config{
		NumGPUs:       gpus,
		LinkBandwidth: 100e9,
		LinkLatency:   2 * sim.USec,
		HostBandwidth: 20e9,
		HostLatency:   5 * sim.USec,
	})
}

// runCluster executes one serving config on a fresh engine and returns the
// metrics and the replay digest. Extra observers are registered before
// Start.
func runCluster(tb testing.TB, gpus int, cfg Config,
	obs ...task.Observer) (*Metrics, uint64) {
	tb.Helper()
	eng := sim.NewSerialEngine()
	digest := sim.NewDigestHook()
	eng.RegisterHook(digest)
	topo := testTopo(gpus)
	net := network.NewFlowNetwork(eng, topo)
	spec := gpu.A40
	cl, err := New(eng, net, topo, &spec, cfg)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	for _, o := range obs {
		cl.Observe(o)
	}
	cl.Start()
	if err := eng.Run(); err != nil {
		tb.Fatalf("run: %v", err)
	}
	m, err := cl.Metrics()
	if err != nil {
		tb.Fatalf("metrics: %v", err)
	}
	return m, digest.Sum64()
}

func smallConfig(seed int64, sched string) Config {
	return Config{
		Model:     "gpt2",
		Scheduler: sched,
		MaxBatch:  4,
		Arrivals: ArrivalConfig{
			Seed: seed, Rate: 300, Requests: 40,
			PromptMin: 8, PromptMax: 64, OutputMin: 4, OutputMax: 24,
			PriorityLevels: 3,
		},
	}
}

func TestServingSameSeedIdentical(t *testing.T) {
	m1, d1 := runCluster(t, 2, smallConfig(7, "fifo"))
	m2, d2 := runCluster(t, 2, smallConfig(7, "fifo"))
	if d1 != d2 {
		t.Fatalf("same seed, digests differ: %#x vs %#x", d1, d2)
	}
	j1, _ := json.Marshal(m1)
	j2, _ := json.Marshal(m2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same seed, metrics differ:\n%s\n%s", j1, j2)
	}
}

func TestServingDifferentSeedDiverges(t *testing.T) {
	_, d1 := runCluster(t, 2, smallConfig(7, "fifo"))
	_, d2 := runCluster(t, 2, smallConfig(8, "fifo"))
	if d1 == d2 {
		t.Fatalf("different seeds share digest %#x", d1)
	}
}

// countObs counts observed step tasks without touching the schedule.
type countObs struct{ steps int }

func (c *countObs) TaskDone(t *task.Task, start, end sim.VTime) { c.steps++ }

func TestServingObserversDoNotChangeDigest(t *testing.T) {
	_, bare := runCluster(t, 2, smallConfig(7, "sjf"))
	topo := testTopo(2)
	rec := spantrace.NewRecorder(nil, topo)
	cnt := &countObs{}
	m, observed := runCluster(t, 2, smallConfig(7, "sjf"), rec, cnt)
	if bare != observed {
		t.Fatalf("observers changed the digest: %#x vs %#x", bare, observed)
	}
	if cnt.steps != m.Steps {
		t.Fatalf("observer saw %d steps, metrics report %d",
			cnt.steps, m.Steps)
	}
}

func TestServingAllSchedulersComplete(t *testing.T) {
	for _, sched := range Policies() {
		m, _ := runCluster(t, 2, smallConfig(11, sched))
		if m.Scheduler != sched {
			t.Fatalf("scheduler label %q, want %q", m.Scheduler, sched)
		}
		if m.Completed != m.Requests {
			t.Fatalf("%s: %d of %d completed",
				sched, m.Completed, m.Requests)
		}
	}
}

func TestServingMetricsSanity(t *testing.T) {
	m, _ := runCluster(t, 2, smallConfig(3, "priority"))
	for _, ls := range []LatencyStats{m.Latency, m.TTFT} {
		if !(ls.P50Sec <= ls.P90Sec && ls.P90Sec <= ls.P99Sec &&
			ls.P99Sec <= ls.P999Sec && ls.P999Sec <= ls.MaxSec) {
			t.Fatalf("quantiles not monotone: %+v", ls)
		}
		if ls.P50Sec <= 0 {
			t.Fatalf("non-positive p50: %+v", ls)
		}
	}
	if m.BatchingEfficiency <= 0 || m.BatchingEfficiency > 1 {
		t.Fatalf("batching efficiency %v outside (0, 1]",
			m.BatchingEfficiency)
	}
	if m.ThroughputRPS <= 0 || m.TokensPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", m)
	}
	for _, rm := range m.PerRequest {
		if rm.FirstTokenSec < rm.ArrivalSec || rm.DoneSec < rm.FirstTokenSec {
			t.Fatalf("request %d lifecycle out of order: %+v", rm.ID, rm)
		}
	}
	var served int
	for _, rs := range m.PerReplica {
		if rs.Utilization < 0 || rs.Utilization > 1 {
			t.Fatalf("replica %d utilization %v", rs.Replica, rs.Utilization)
		}
		served += rs.Served
	}
	if served != m.Requests {
		t.Fatalf("replicas served %d, want %d", served, m.Requests)
	}
}

func TestServingRequestSpansRecorded(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo := testTopo(2)
	net := network.NewFlowNetwork(eng, topo)
	spec := gpu.A40
	cl, err := New(eng, net, topo, &spec, smallConfig(5, "fifo"))
	if err != nil {
		t.Fatal(err)
	}
	rec := spantrace.NewRecorder(nil, topo)
	cl.Observe(rec)
	cl.Spans = rec
	cl.Start()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	log := rec.Finalize()
	var reqSpans int
	for i := range log.Spans {
		if log.Spans[i].Cat == spantrace.Request {
			reqSpans++
		}
	}
	if reqSpans != m.Requests {
		t.Fatalf("%d request spans, want %d", reqSpans, m.Requests)
	}
}

func TestServingRejectsOversizedRequest(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo := testTopo(1)
	net := network.NewFlowNetwork(eng, topo)
	spec := gpu.A40
	_, err := New(eng, net, topo, &spec, Config{
		Model: "gpt2",
		Workload: []Request{{
			PromptTokens: 1 << 30, OutputTokens: 1,
		}},
	})
	if err == nil {
		t.Fatal("oversized request accepted")
	}
}

func TestServingRejectsUnknownModelAndScheduler(t *testing.T) {
	eng := sim.NewSerialEngine()
	topo := testTopo(1)
	net := network.NewFlowNetwork(eng, topo)
	spec := gpu.A40
	if _, err := New(eng, net, topo, &spec,
		Config{Model: "nope"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := New(eng, net, topo, &spec,
		Config{Model: "gpt2", Scheduler: "lifo"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}
