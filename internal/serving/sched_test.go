package serving

import "testing"

func TestPolicyOrdering(t *testing.T) {
	reqs := []Request{
		{ID: 0, PromptTokens: 50, OutputTokens: 50, Priority: 0},
		{ID: 1, PromptTokens: 10, OutputTokens: 10, Priority: 2},
		{ID: 2, PromptTokens: 30, OutputTokens: 5, Priority: 1},
		{ID: 3, PromptTokens: 10, OutputTokens: 10, Priority: 2},
	}
	cases := []struct {
		sched string
		want  []int
	}{
		{"fifo", []int{0, 1, 2, 3}},
		{"priority", []int{1, 3, 2, 0}},
		{"sjf", []int{1, 3, 2, 0}},
	}
	for _, tc := range cases {
		pol, err := PolicyByName(tc.sched)
		if err != nil {
			t.Fatal(err)
		}
		var q []int
		for id := range reqs {
			q = insertByPolicy(q, id, reqs, pol)
		}
		for i, want := range tc.want {
			if q[i] != want {
				t.Fatalf("%s order %v, want %v", tc.sched, q, tc.want)
			}
		}
	}
}

func TestPolicyTiesBreakByID(t *testing.T) {
	a := &Request{ID: 1, PromptTokens: 5, OutputTokens: 5, Priority: 1}
	b := &Request{ID: 2, PromptTokens: 5, OutputTokens: 5, Priority: 1}
	for _, name := range Policies() {
		pol, _ := PolicyByName(name)
		if !pol.Less(a, b) || pol.Less(b, a) {
			t.Fatalf("%s: equal-order requests must break ties by ID", name)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	if p, err := PolicyByName(""); err != nil || p.Name() != "fifo" {
		t.Fatalf("empty name: %v, %v", p, err)
	}
	if _, err := PolicyByName("round-robin"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if len(Policies()) != 3 {
		t.Fatalf("policies: %v", Policies())
	}
}
