package baseline

import (
	"math"
	"testing"

	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/hwsim"
	"triosim/internal/sim"
)

func TestPredictDPComponents(t *testing.T) {
	tr, err := hwsim.CollectTrace("resnet18", 64, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Predict(Config{Trace: tr, NumGPUs: 4, LinkBandwidth: 235e9,
		Parallelism: DP})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: between 1/4 of the trace time and the full trace time plus
	// communication.
	lo := tr.TotalTime() / 5
	hi := tr.TotalTime() + 100*sim.MSec
	if got < lo || got > hi {
		t.Fatalf("DP prediction %v outside [%v, %v]", got, lo, hi)
	}
}

func TestDDPNotSlowerThanDP(t *testing.T) {
	tr, err := hwsim.CollectTrace("vgg11", 64, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	dp, _ := Predict(Config{Trace: tr, NumGPUs: 4, LinkBandwidth: 50e9,
		Parallelism: DP})
	ddp, _ := Predict(Config{Trace: tr, NumGPUs: 4, LinkBandwidth: 50e9,
		Parallelism: DDP})
	if ddp > dp {
		t.Fatalf("analytical DDP %v slower than DP %v", ddp, dp)
	}
}

func TestPPBubbleShrinksWithChunks(t *testing.T) {
	tr, err := hwsim.CollectTrace("vgg16", 128, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := Predict(Config{Trace: tr, NumGPUs: 4, LinkBandwidth: 235e9,
		Parallelism: PP, MicroBatches: 1})
	t4, _ := Predict(Config{Trace: tr, NumGPUs: 4, LinkBandwidth: 235e9,
		Parallelism: PP, MicroBatches: 4})
	if t4 >= t1 {
		t.Fatalf("more chunks should shrink the bubble: %v vs %v", t4, t1)
	}
}

func TestValidation(t *testing.T) {
	tr, err := hwsim.CollectTrace("resnet18", 16, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Predict(Config{NumGPUs: 2, LinkBandwidth: 1,
		Parallelism: DP}); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := Predict(Config{Trace: tr, NumGPUs: 0, LinkBandwidth: 1,
		Parallelism: DP}); err == nil {
		t.Fatal("0 GPUs accepted")
	}
	if _, err := Predict(Config{Trace: tr, NumGPUs: 2,
		Parallelism: DP}); err == nil {
		t.Fatal("no bandwidth accepted")
	}
	if _, err := Predict(Config{Trace: tr, NumGPUs: 2, LinkBandwidth: 1,
		Parallelism: "quantum"}); err == nil {
		t.Fatal("unknown parallelism accepted")
	}
}

// The Table 1 story: on a symmetric fabric the analytical baseline is
// competitive with TrioSim, but on an asymmetric one (one link slowed 4×)
// the baseline cannot express the degradation and its error blows past
// TrioSim's.
func TestAsymmetricNetworkGap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison; run without -short")
	}
	const model = "vgg16"
	p2 := gpu.P2

	// Symmetric case.
	symTruth, err := core.GroundTruth(core.Config{Model: model,
		Platform: &p2, Parallelism: core.DDP, TraceBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hwsim.CollectTrace(model, 128, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Predict(Config{Trace: tr, NumGPUs: 4,
		LinkBandwidth: p2.LinkBandwidth, Parallelism: DDP})
	if err != nil {
		t.Fatal(err)
	}
	symBaseErr := math.Abs(float64(base-symTruth.PerIteration)) /
		float64(symTruth.PerIteration)
	if symBaseErr > 0.25 {
		t.Fatalf("baseline should be decent on symmetric fabric: %.1f%%",
			symBaseErr*100)
	}

	// Asymmetric case: slow one GPU's switch link by 4×.
	topo := core.BuildTopology(&p2)
	topo.SetLinkBandwidth(0, p2.LinkBandwidth/4)
	asymTruth, err := core.GroundTruth(core.Config{Model: model,
		Platform: &p2, Topology: topo, Parallelism: core.DDP,
		TraceBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	trioPred, err := core.Simulate(core.Config{Model: model, Platform: &p2,
		Topology: topo, Parallelism: core.DDP, TraceBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	trioErr := math.Abs(float64(trioPred.PerIteration-asymTruth.PerIteration)) /
		float64(asymTruth.PerIteration)
	// The analytical model has no way to express the slow link; its best
	// effort is the uniform-bandwidth prediction.
	asymBaseErr := math.Abs(float64(base-asymTruth.PerIteration)) /
		float64(asymTruth.PerIteration)
	if trioErr >= asymBaseErr {
		t.Fatalf("TrioSim error %.1f%% should beat analytical %.1f%% on asymmetric fabric",
			trioErr*100, asymBaseErr*100)
	}
}
