// Package baseline implements an AstraSim/DistSim-class *analytical*
// multi-GPU performance model: closed-form formulas with a symmetric-network
// assumption, no event simulation, no bandwidth sharing. The paper's Table 1
// positions TrioSim against exactly this family — analytical models are fast
// and accurate on symmetric fabrics but cannot express asymmetric networks
// (e.g., one degraded link), which TrioSim handles natively. The Table 1
// experiment (internal/experiments) quantifies that gap by comparing both
// predictors against the reference hardware emulator on symmetric and
// asymmetric configurations.
package baseline

import (
	"fmt"

	"triosim/internal/sim"
	"triosim/internal/trace"
)

// Parallelism mirrors the core strategies the analytical model covers.
type Parallelism string

// Strategies.
const (
	DP  Parallelism = "dp"
	DDP Parallelism = "ddp"
	TP  Parallelism = "tp"
	PP  Parallelism = "pp"
)

// Config parameterizes one analytical prediction.
type Config struct {
	Trace   *trace.Trace
	NumGPUs int
	// LinkBandwidth is the single uniform bandwidth the analytical model
	// assumes for every link (bytes/s). Asymmetry cannot be expressed —
	// that is the point.
	LinkBandwidth float64
	Parallelism   Parallelism
	// GlobalBatch defaults to the trace batch.
	GlobalBatch int
	// MicroBatches applies to PP (minimum 1).
	MicroBatches int
}

// phaseTimes sums the traced op times per phase, linearly rescaled to the
// per-device batch (the vTrain-style proportionality assumption).
func phaseTimes(tr *trace.Trace, batchScale float64) (fwd, bwd, opt sim.VTime) {
	for i := range tr.Ops {
		op := &tr.Ops[i]
		switch op.Phase {
		case trace.Forward:
			fwd += sim.VTime(float64(op.Time) * batchScale)
		case trace.Backward:
			bwd += sim.VTime(float64(op.Time) * batchScale)
		case trace.Optimizer:
			opt += op.Time
		}
	}
	return fwd, bwd, opt
}

// ringAllReduceTime is the textbook 2(N−1)/N·B/W formula.
func ringAllReduceTime(bytes float64, n int, bw float64) sim.VTime {
	if n <= 1 {
		return 0
	}
	return sim.VTime(2 * float64(n-1) / float64(n) * bytes / bw)
}

// ringAllGatherTime is (N−1)/N·B/W.
func ringAllGatherTime(bytes float64, n int, bw float64) sim.VTime {
	if n <= 1 {
		return 0
	}
	return sim.VTime(float64(n-1) / float64(n) * bytes / bw)
}

// Predict returns the analytical per-iteration time.
func Predict(cfg Config) (sim.VTime, error) {
	if cfg.Trace == nil {
		return 0, fmt.Errorf("baseline: nil trace")
	}
	if cfg.NumGPUs < 1 {
		return 0, fmt.Errorf("baseline: %d GPUs", cfg.NumGPUs)
	}
	if cfg.LinkBandwidth <= 0 && cfg.NumGPUs > 1 {
		return 0, fmt.Errorf("baseline: no link bandwidth")
	}
	tr := cfg.Trace
	batch := cfg.GlobalBatch
	if batch == 0 {
		batch = tr.BatchSize
	}
	m := cfg.MicroBatches
	if m < 1 {
		m = 1
	}
	n := cfg.NumGPUs
	grad := float64(tr.GradientBytes())

	switch cfg.Parallelism {
	case DP:
		scale := float64(batch) / float64(n) / float64(tr.BatchSize)
		fwd, bwd, opt := phaseTimes(tr, scale)
		return fwd + bwd + ringAllReduceTime(grad, n, cfg.LinkBandwidth) +
			opt, nil
	case DDP:
		scale := float64(batch) / float64(n) / float64(tr.BatchSize)
		fwd, bwd, opt := phaseTimes(tr, scale)
		// Perfectly overlapped bucketed AllReduce.
		comm := ringAllReduceTime(grad, n, cfg.LinkBandwidth)
		overlap := bwd
		if comm.After(overlap) {
			overlap = comm
		}
		return fwd + overlap + opt, nil
	case TP:
		scale := float64(batch) / float64(tr.BatchSize)
		// Parallelizable work splits N ways; the rest replicates.
		var fwdPar, fwdRep, bwdPar, bwdRep, opt sim.VTime
		var gatherBytes float64
		lastLayer := -1
		for i := range tr.Ops {
			op := &tr.Ops[i]
			t := sim.VTime(float64(op.Time) * scale)
			switch op.Phase {
			case trace.Forward:
				if op.Parallelizable {
					fwdPar += t
					if op.Layer != lastLayer {
						lastLayer = op.Layer
					}
					// Per-layer gather of this op's output.
					gatherBytes += float64(op.BytesOut(tr.Tensors)) * scale
				} else {
					fwdRep += t
				}
			case trace.Backward:
				if op.Parallelizable {
					bwdPar += t
					gatherBytes += float64(op.BytesOut(tr.Tensors)) * scale
				} else {
					bwdRep += t
				}
			case trace.Optimizer:
				opt += op.Time / sim.VTime(n)
			}
		}
		comm := ringAllGatherTime(gatherBytes, n, cfg.LinkBandwidth)
		return (fwdPar+bwdPar)/sim.VTime(n) + fwdRep + bwdRep + comm +
			opt, nil
	case PP:
		scale := float64(batch) / float64(tr.BatchSize)
		fwd, bwd, opt := phaseTimes(tr, scale)
		// GPipe bubble formula: (M + S − 1)/(M·S) of the total work.
		work := float64(fwd + bwd)
		t := work * float64(m+n-1) / float64(m*n)
		return sim.VTime(t) + opt, nil
	}
	return 0, fmt.Errorf("baseline: unknown parallelism %q", cfg.Parallelism)
}
