package tracecache

import (
	"errors"
	"sync"
	"testing"

	"triosim/internal/gpu"
	"triosim/internal/sim"
	"triosim/internal/tensor"
	"triosim/internal/trace"
)

// makeTrace builds a tiny two-op trace for cache tests.
func makeTrace(model string) *trace.Trace {
	tr := trace.New(model, "A100", 32)
	in := tr.Tensors.Add(tensor.Tensor{
		Dims: []int64{32, 3, 224, 224}, DType: tensor.Float32,
		Category: tensor.Input, BatchDim: 0,
	})
	w := tr.Tensors.Add(tensor.Tensor{
		Dims: []int64{64, 3, 7, 7}, DType: tensor.Float32,
		Category: tensor.Weight,
	})
	out := tr.Tensors.Add(tensor.Tensor{
		Dims: []int64{32, 64, 112, 112}, DType: tensor.Float32,
		Category: tensor.Activation, BatchDim: 0,
	})
	tr.Append(trace.Op{Name: "conv2d", Phase: trace.Forward,
		Time: 2 * sim.MSec, FLOPs: 1e9,
		Inputs: []tensor.ID{in, w}, Outputs: []tensor.ID{out}})
	tr.Append(trace.Op{Name: "relu", Phase: trace.Forward,
		Time: 1 * sim.MSec, FLOPs: 1e6,
		Inputs: []tensor.ID{out}, Outputs: []tensor.ID{out}})
	return tr
}

func testKey(model string) Key {
	return Key{Model: model, Batch: 32, Spec: gpu.A100, NoiseAmp: 0.02}
}

func TestGetTraceHitMiss(t *testing.T) {
	s := New()
	builds := 0
	build := func() (*trace.Trace, error) {
		builds++
		return makeTrace("m"), nil
	}
	first, err := s.GetTrace(testKey("m"), build)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.GetTrace(testKey("m"), build)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	if first != second {
		t.Fatal("cache returned different trace pointers for the same key")
	}
	st := s.Stats()
	if st.TraceHits != 1 || st.TraceMisses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1",
			st.TraceHits, st.TraceMisses)
	}
	if st.Traces != 1 {
		t.Fatalf("stats report %d traces, want 1", st.Traces)
	}
	if st.Bytes <= 0 {
		t.Fatalf("stats report %d bytes for a non-empty trace", st.Bytes)
	}
}

func TestGetTraceKeysAreContentAddressed(t *testing.T) {
	s := New()
	build := func(model string) func() (*trace.Trace, error) {
		return func() (*trace.Trace, error) { return makeTrace(model), nil }
	}
	if _, err := s.GetTrace(testKey("a"), build("a")); err != nil {
		t.Fatal(err)
	}
	// Same model, different spec value: a distinct entry even though both
	// specs could plausibly print the same name.
	custom := gpu.A100
	custom.MemBandwidth /= 2
	k := testKey("a")
	k.Spec = custom
	if _, err := s.GetTrace(k, build("a")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TraceMisses != 2 || st.Traces != 2 {
		t.Fatalf("stats = %d misses / %d traces, want 2/2: spec must be part "+
			"of the key", st.TraceMisses, st.Traces)
	}
}

func TestGetTraceErrorNotCached(t *testing.T) {
	s := New()
	boom := errors.New("collector exploded")
	builds := 0
	if _, err := s.GetTrace(testKey("m"), func() (*trace.Trace, error) {
		builds++
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The failure must not poison the key: the next call rebuilds.
	tr, err := s.GetTrace(testKey("m"), func() (*trace.Trace, error) {
		builds++
		return makeTrace("m"), nil
	})
	if err != nil || tr == nil {
		t.Fatalf("rebuild after error failed: %v", err)
	}
	if builds != 2 {
		t.Fatalf("build ran %d times, want 2", builds)
	}
}

// constTimer is a trivial OpTimer for cache identity tests.
type constTimer struct{ v sim.VTime }

func (c constTimer) OpTime(string, float64, float64, sim.VTime, bool) sim.VTime {
	return c.v
}

func TestGetTimerHitMiss(t *testing.T) {
	s := New()
	k := TimerKey{Trace: testKey("m"), ComputeModel: "li", Target: gpu.A100}
	fits := 0
	fit := func() (OpTimer, error) {
		fits++
		return constTimer{v: sim.MSec}, nil
	}
	first, err := s.GetTimer(k, fit)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.GetTimer(k, fit)
	if err != nil {
		t.Fatal(err)
	}
	if fits != 1 {
		t.Fatalf("fit ran %d times, want 1", fits)
	}
	if first != second {
		t.Fatal("cache returned different timers for the same key")
	}
	// A different compute model on the same trace is a different timer.
	k2 := k
	k2.ComputeModel = "roofline"
	if _, err := s.GetTimer(k2, fit); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TimerHits != 1 || st.TimerMisses != 2 ||
		st.Timers != 2 {
		t.Fatalf("stats = %d/%d hits/misses, %d timers; want 1/2, 2",
			st.TimerHits, st.TimerMisses, st.Timers)
	}
}

func TestGetTimerErrorNotCached(t *testing.T) {
	s := New()
	k := TimerKey{Trace: testKey("m"), ComputeModel: "li", Target: gpu.A100}
	boom := errors.New("fit failed")
	if _, err := s.GetTimer(k, func() (OpTimer, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	tm, err := s.GetTimer(k, func() (OpTimer, error) {
		return constTimer{v: sim.MSec}, nil
	})
	if err != nil || tm == nil {
		t.Fatalf("refit after error failed: %v", err)
	}
}

// TestGetTraceSingleflight hammers one cold key from many goroutines: the
// build must run exactly once, every caller must get the same trace, and the
// joiners must count as hits.
func TestGetTraceSingleflight(t *testing.T) {
	s := New()
	var builds int // guarded by the build gate: only one builder may run
	gate := make(chan struct{})
	const workers = 16
	results := make([]*trace.Trace, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := s.GetTrace(testKey("m"), func() (*trace.Trace, error) {
				builds++
				<-gate // hold the build open so the others pile up
				return makeTrace("m"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = tr
		}(i)
	}
	close(gate)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times under contention, want 1", builds)
	}
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("worker %d got a different trace pointer", i)
		}
	}
	st := s.Stats()
	if st.TraceMisses != 1 {
		t.Fatalf("misses = %d, want 1", st.TraceMisses)
	}
	if st.TraceHits != workers-1 {
		t.Fatalf("hits = %d, want %d (every joiner skipped a build)",
			st.TraceHits, workers-1)
	}
}

// TestGetTimerSingleflight is the same contention check for fitted timers.
func TestGetTimerSingleflight(t *testing.T) {
	s := New()
	k := TimerKey{Trace: testKey("m"), ComputeModel: "li", Target: gpu.A100}
	var fits int
	gate := make(chan struct{})
	const workers = 16
	results := make([]OpTimer, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tm, err := s.GetTimer(k, func() (OpTimer, error) {
				fits++
				<-gate
				return constTimer{v: sim.MSec}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = tm
		}(i)
	}
	close(gate)
	wg.Wait()
	if fits != 1 {
		t.Fatalf("fit ran %d times under contention, want 1", fits)
	}
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("worker %d got a different timer", i)
		}
	}
}

// TestCachedTraceImmutable guards the read-only sharing contract: cloning a
// cached trace and mutating the clone must leave the cached original — op
// table, ID slices, and tensor table — untouched.
func TestCachedTraceImmutable(t *testing.T) {
	s := New()
	cached, err := s.GetTrace(testKey("m"), func() (*trace.Trace, error) {
		return makeTrace("m"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTime := cached.TotalTime()
	wantOps := len(cached.Ops)
	wantInput0 := cached.Ops[0].Inputs[0]
	wantDim0 := cached.Tensors.Get(wantInput0).Dims[0]

	cl := cached.Clone()
	if cl == cached {
		t.Fatal("Clone returned the same pointer")
	}
	cl.Ops[0].Time *= 100
	cl.Ops[0].Inputs[0] = 999
	cl.Tensors.Get(wantInput0).Dims[0] = 7
	cl.Append(trace.Op{Name: "extra", Time: sim.MSec})

	again, err := s.GetTrace(testKey("m"), func() (*trace.Trace, error) {
		t.Fatal("cache rebuilt a present key")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalTime() != wantTime {
		t.Fatalf("cached trace time changed: %v -> %v (op-table mutation "+
			"leaked through Clone)", wantTime, again.TotalTime())
	}
	if len(again.Ops) != wantOps {
		t.Fatalf("cached trace grew from %d to %d ops", wantOps,
			len(again.Ops))
	}
	if again.Ops[0].Inputs[0] != wantInput0 {
		t.Fatal("cached op ID slice mutated through the clone")
	}
	if got := again.Tensors.Get(wantInput0).Dims[0]; got != wantDim0 {
		t.Fatalf("cached tensor dims mutated through the clone: %d", got)
	}
}

// TestApproxTraceBytes sanity-checks the telemetry gauge.
func TestApproxTraceBytes(t *testing.T) {
	if approxTraceBytes(nil) != 0 {
		t.Fatal("nil trace should weigh 0 bytes")
	}
	small := makeTrace("m")
	big := makeTrace("m")
	for i := 0; i < 50; i++ {
		big.Append(trace.Op{Name: "pad", Time: sim.MSec})
	}
	if approxTraceBytes(big) <= approxTraceBytes(small) {
		t.Fatal("a larger trace should weigh more")
	}
}
