package tracecache

import (
	"testing"

	"triosim/internal/gpu"
	"triosim/internal/hwsim"
)

// The store's identity is the canonical key digest: keys that differ in any
// field — including a single GPU-spec scalar — must address distinct
// entries, and the same key must always address the same one.
func TestKeyDigestIdentity(t *testing.T) {
	base := Key{Model: "resnet50", Batch: 128, Spec: gpu.A100,
		NoiseAmp: hwsim.DefaultNoiseAmp}
	if base.Digest() != base.Digest() {
		t.Fatal("same key digested differently across calls")
	}

	custom := gpu.A100
	custom.MemBandwidth *= 2
	variants := []Key{
		{Model: "resnet18", Batch: 128, Spec: gpu.A100, NoiseAmp: hwsim.DefaultNoiseAmp},
		{Model: "resnet50", Batch: 64, Spec: gpu.A100, NoiseAmp: hwsim.DefaultNoiseAmp},
		{Model: "resnet50", Batch: 128, Spec: gpu.A40, NoiseAmp: hwsim.DefaultNoiseAmp},
		{Model: "resnet50", Batch: 128, Spec: custom, NoiseAmp: hwsim.DefaultNoiseAmp},
		{Model: "resnet50", Batch: 128, Spec: gpu.A100, NoiseAmp: 0},
	}
	seen := map[string]Key{base.Digest(): base}
	for _, v := range variants {
		d := v.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("keys %+v and %+v share digest %s", prev, v, d)
		}
		seen[d] = v
	}
}

func TestTimerKeyDigestIdentity(t *testing.T) {
	trk := Key{Model: "gpt2", Batch: 32, Spec: gpu.A100,
		NoiseAmp: hwsim.DefaultNoiseAmp}
	a := TimerKey{Trace: trk, ComputeModel: "li", Target: gpu.A100}
	b := TimerKey{Trace: trk, ComputeModel: "roofline", Target: gpu.A100}
	c := TimerKey{Trace: trk, ComputeModel: "li", Target: gpu.H100}
	if a.Digest() != a.Digest() {
		t.Fatal("timer key digest not stable")
	}
	if a.Digest() == b.Digest() || a.Digest() == c.Digest() {
		t.Fatal("distinct timer keys collided")
	}
	// A timer key must never alias a trace key, even if the structures were
	// ever to marshal identically (domain separation).
	if a.Digest() == trk.Digest() {
		t.Fatal("timer key aliased a trace key")
	}
}
