// Package tracecache shares collected single-GPU traces and fitted operator
// timers across simulations. TrioSim's pitch is that one trace drives every
// multi-GPU prediction, yet a figure sweep that varies only GPU count or link
// bandwidth would otherwise rebuild the same (model, batch, GPU) trace — and
// refit the same performance model — once per scenario. The cache memoizes
// that invariant front half of the pipeline.
//
// Keys are content-addressed: every input that influences the bytes of a
// collected trace (model name, trace batch, the full GPU spec by value, the
// timer's noise amplitude) is part of the key, so two configurations share an
// entry exactly when the tracer would have produced identical traces. The
// key structs are canonicalized through internal/digest — the same helper
// the triosimd server uses to coalesce identical requests — so "identical
// configuration" has one spelling across the whole system. There is
// deliberately no eviction: a sweep's working set is a handful of traces.
//
// Concurrency: reads take an RWMutex read lock (the steady state for warm
// sweeps); the first miss for a key builds the value once while concurrent
// requesters for the same key wait on a singleflight-style in-flight call
// instead of duplicating the build.
//
// Sharing contract: cached traces and timers are shared READ-ONLY. Every
// downstream consumer (the extrapolator, the perfmodel fit, ground-truth
// execution) treats traces as immutable; a consumer that needs to mutate one
// must take a copy first — trace.Trace.Clone is the copy-on-write boundary.
// TestCachedTraceImmutable in this package guards the contract.
package tracecache

import (
	"sync"
	"sync/atomic"

	"triosim/internal/digest"
	"triosim/internal/gpu"
	"triosim/internal/sim"
	"triosim/internal/trace"
)

// Key identifies one collected trace: everything that influences its bytes.
// gpu.Spec is embedded by value (it is an all-scalar comparable struct), so a
// custom spec with, say, a different memory bandwidth gets its own entry even
// if it shares a name with a zoo spec.
type Key struct {
	// Model is the model-zoo workload name.
	Model string
	// Batch is the batch size the trace is collected at.
	Batch int
	// Spec is the GPU the trace is stamped for.
	Spec gpu.Spec
	// NoiseAmp is the stamping timer's kernel-noise amplitude
	// (hwsim.DefaultNoiseAmp for traces collected via hwsim.CollectTrace).
	NoiseAmp float64
}

// Digest returns the key's canonical content address (internal/digest). Two
// Keys digest equally exactly when they would cache the same trace.
func (k Key) Digest() string { return digest.MustSum("tracecache.Key", k) }

// TimerKey identifies one fitted operator timer: the trace it was fitted on,
// the compute-model variant, and the rescale target (equal to Trace.Spec when
// the trace GPU and the simulated platform GPU coincide).
type TimerKey struct {
	Trace        Key
	ComputeModel string
	Target       gpu.Spec
}

// Digest returns the timer key's canonical content address.
func (k TimerKey) Digest() string {
	return digest.MustSum("tracecache.TimerKey", k)
}

// OpTimer mirrors extrapolator.OpTimer structurally, so fitted models pass
// through the cache without this package importing the extrapolator.
type OpTimer interface {
	OpTime(name string, flops, bytes float64, traceTime sim.VTime,
		scaled bool) sim.VTime
}

// call is one in-flight build; waiters block on done.
type call struct {
	done  chan struct{}
	tr    *trace.Trace
	timer OpTimer
	err   error
}

// Store is the shared cache. Maps are keyed by the canonical key digest
// (Key.Digest / TimerKey.Digest), not the structs themselves, so the store's
// notion of identity is exactly the module-wide canonical one. The zero
// value is not usable; call New.
type Store struct {
	mu       sync.RWMutex
	traces   map[string]*trace.Trace
	timers   map[string]OpTimer
	inflight map[string]*call
	fitting  map[string]*call

	hits        atomic.Uint64
	misses      atomic.Uint64
	timerHits   atomic.Uint64
	timerMisses atomic.Uint64
	bytes       atomic.Int64
}

// New returns an empty store.
func New() *Store {
	return &Store{
		traces:   map[string]*trace.Trace{},
		timers:   map[string]OpTimer{},
		inflight: map[string]*call{},
		fitting:  map[string]*call{},
	}
}

// GetTrace returns the trace for k, invoking build at most once per key no
// matter how many goroutines ask concurrently. The returned trace is shared:
// callers must treat it as immutable (Clone before mutating). Build errors
// are returned to every waiter and not cached.
func (s *Store) GetTrace(k Key, build func() (*trace.Trace, error)) (
	*trace.Trace, error) {

	dk := k.Digest()
	s.mu.RLock()
	tr, ok := s.traces[dk]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
		return tr, nil
	}

	s.mu.Lock()
	if tr, ok := s.traces[dk]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return tr, nil
	}
	if c, ok := s.inflight[dk]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, c.err
		}
		s.hits.Add(1) // the waiter skipped a build
		return c.tr, nil
	}
	c := &call{done: make(chan struct{})}
	s.inflight[dk] = c
	s.mu.Unlock()

	s.misses.Add(1)
	c.tr, c.err = build()

	s.mu.Lock()
	delete(s.inflight, dk)
	if c.err == nil {
		s.traces[dk] = c.tr
		s.bytes.Add(approxTraceBytes(c.tr))
	}
	s.mu.Unlock()
	close(c.done)
	return c.tr, c.err
}

// GetTimer is GetTrace for fitted operator timers: fit runs at most once per
// key; the fitted model is shared read-only (perfmodel predictions never
// mutate the model).
func (s *Store) GetTimer(k TimerKey, fit func() (OpTimer, error)) (
	OpTimer, error) {

	dk := k.Digest()
	s.mu.RLock()
	t, ok := s.timers[dk]
	s.mu.RUnlock()
	if ok {
		s.timerHits.Add(1)
		return t, nil
	}

	s.mu.Lock()
	if t, ok := s.timers[dk]; ok {
		s.mu.Unlock()
		s.timerHits.Add(1)
		return t, nil
	}
	if c, ok := s.fitting[dk]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, c.err
		}
		s.timerHits.Add(1)
		return c.timer, nil
	}
	c := &call{done: make(chan struct{})}
	s.fitting[dk] = c
	s.mu.Unlock()

	s.timerMisses.Add(1)
	c.timer, c.err = fit()

	s.mu.Lock()
	delete(s.fitting, dk)
	if c.err == nil {
		s.timers[dk] = c.timer
	}
	s.mu.Unlock()
	close(c.done)
	return c.timer, c.err
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// TraceHits counts GetTrace calls served from the cache (including
	// waiters that joined an in-flight build).
	TraceHits uint64 `json:"trace_hits"`
	// TraceMisses counts trace builds actually executed.
	TraceMisses uint64 `json:"trace_misses"`
	// TimerHits and TimerMisses are the same split for fitted timers.
	TimerHits   uint64 `json:"timer_hits"`
	TimerMisses uint64 `json:"timer_misses"`
	// Traces and Timers are the current entry counts.
	Traces int `json:"traces"`
	Timers int `json:"timers"`
	// Bytes approximates the retained size of all cached traces.
	Bytes int64 `json:"bytes"`
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	nTraces, nTimers := len(s.traces), len(s.timers)
	s.mu.RUnlock()
	return Stats{
		TraceHits:   s.hits.Load(),
		TraceMisses: s.misses.Load(),
		TimerHits:   s.timerHits.Load(),
		TimerMisses: s.timerMisses.Load(),
		Traces:      nTraces,
		Timers:      nTimers,
		Bytes:       s.bytes.Load(),
	}
}

// approxTraceBytes estimates the retained size of a trace: op table, tensor
// table, and the per-op ID slices. It is a telemetry gauge, not an allocator
// accounting — constants are rough sizeofs of the structs involved.
func approxTraceBytes(tr *trace.Trace) int64 {
	if tr == nil {
		return 0
	}
	const opSize, tensorSize = 128, 88
	n := int64(len(tr.Ops)) * opSize
	for i := range tr.Ops {
		n += int64(len(tr.Ops[i].Inputs)+len(tr.Ops[i].Outputs)) * 8
		n += int64(len(tr.Ops[i].Name) + len(tr.Ops[i].LayerName))
	}
	if tr.Tensors != nil {
		for _, t := range tr.Tensors.All() {
			n += tensorSize + int64(len(t.Dims))*8
		}
	}
	return n
}
