package extrapolator

import (
	"fmt"

	"triosim/internal/collective"
	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
	"triosim/internal/telemetry"
	"triosim/internal/trace"
)

// allReduce dispatches to the configured AllReduce algorithm. With the
// default "auto" selection, topologies that declare link tiers get the
// hierarchical schedule (intra-machine reduce-scatter → per-rail
// inter-machine ring/tree → intra-machine all-gather); flat topologies keep
// the ring, so paper-scale replays are unchanged.
func (b *builder) allReduce(ring []network.NodeID, bytes float64,
	after []*task.Task, opt collective.Options) *task.Task {
	switch b.cfg.Collective {
	case "tree":
		return collective.TreeAllReduce(b.g, ring, bytes, after, opt)
	case "ring":
		return collective.RingAllReduce(b.g, ring, bytes, after, opt)
	case "hier":
		return collective.HierAllReduce(b.g, b.cfg.Topo, ring, bytes,
			after, opt)
	}
	if b.cfg.Topo.Tiered() {
		return collective.HierAllReduce(b.g, b.cfg.Topo, ring, bytes,
			after, opt)
	}
	return collective.RingAllReduce(b.g, ring, bytes, after, opt)
}

// DataParallel extrapolates the trace to N-GPU data-parallel training.
//
// The trace extrapolator duplicates all computing operators onto every GPU
// at the per-GPU batch share, then adds the AllReduce operators for gradient
// synchronization — after the whole backward pass for standard DataParallel
// (overlap=false), or bucketed and overlapped with backward propagation for
// DistributedDataParallel (overlap=true), mirroring PyTorch's behaviour.
func DataParallel(cfg Config, overlap bool) (*Result, error) {
	b, err := newBuilder(cfg)
	if err != nil {
		return nil, err
	}
	cfg = b.cfg
	n := cfg.NumGPUs
	// Each GPU processes its share of the global batch.
	perGPU := float64(cfg.GlobalBatch) / float64(n)
	scale := perGPU / float64(b.tr.BatchSize)

	strategy := "dp"
	if overlap {
		strategy = "ddp"
	}
	res := &Result{Graph: b.g,
		Meta: telemetry.ParallelStat{Strategy: strategy, Replicas: n}}
	gate := b.g.AddBarrier("start")
	for it := 0; it < cfg.Iterations; it++ {
		suffix := fmt.Sprintf("-it%d", it)
		var end *task.Task
		if overlap {
			end = b.ddpIteration(scale, gate, suffix)
		} else {
			end = b.stdDPIteration(scale, gate, suffix)
		}
		res.IterationEnds = append(res.IterationEnds, end)
		gate = end
	}
	res.Meta.Buckets = b.lastBuckets
	return res, nil
}

// stdDPIteration: forward+backward replicas, one big AllReduce after the
// whole backward pass, then the optimizer step. Standard DataParallel's
// single-process dispatch overhead (GIL) appears as a chained per-layer
// delay when the hardware Effects request it.
func (b *builder) stdDPIteration(scale float64, gate *task.Task,
	suffix string) *task.Task {

	n := b.cfg.NumGPUs
	lastBwd := make([]*task.Task, n)

	// Per-layer dispatch delays (standard DP only, hardware runs only).
	var dispatch map[int]*task.Task
	if b.cfg.Effects.DPDispatchPerLayer.After(0) {
		dispatch = map[int]*task.Task{}
		prev := gate
		for l := 0; l < b.tr.NumLayers(); l++ {
			d := b.g.AddDelay(b.cfg.Effects.DPDispatchPerLayer,
				fmt.Sprintf("dp-dispatch-l%d%s", l, suffix))
			b.g.AddDep(prev, d)
			dispatch[l] = d
			prev = d
		}
	}

	for i := 0; i < n; i++ {
		load := b.stageInput(b.node(i), scale, gate,
			fmt.Sprintf("stage-input-g%d%s", i, suffix))
		prev := load
		infl := sim.VTime(1 + b.cfg.Effects.DPComputeInflation)
		for _, idx := range append(append([]int{}, b.fwd...), b.bwd...) {
			op := &b.tr.Ops[idx]
			t := b.g.AddCompute(b.phys(i), b.opDuration(op, scale, 1)*infl,
				op.Name+suffix)
			t.Layer = op.Layer
			b.g.AddDep(prev, t)
			if dispatch != nil && op.Phase == trace.Forward {
				b.g.AddDep(dispatch[op.Layer], t)
			}
			prev = t
		}
		lastBwd[i] = prev
	}

	end := b.g.AddBarrier("iter-done" + suffix)
	if b.cfg.ForwardOnly {
		for i := 0; i < n; i++ {
			b.g.AddDep(lastBwd[i], end)
		}
		return end
	}
	ar := b.allReduce(b.ringNodes(),
		float64(b.tr.GradientBytes()),
		b.permuteGates(lastBwd), collective.Options{
			StepDelay: b.cfg.Effects.CommStepLatency,
			Label:     "allreduce" + suffix,
			Log:       b.cfg.Collectives,
		})
	for i := 0; i < n; i++ {
		opt := b.emitSeq(i, b.opt, scale, 1, ar, suffix)
		b.g.AddDep(opt, end)
	}
	return end
}

// ddpIteration: DistributedDataParallel overlaps bucketed gradient
// AllReduces with backward computation. Buckets fill in backward (reverse
// layer) order; each bucket's AllReduce launches as soon as its gradients
// exist on every GPU, and buckets serialize on the communication stream.
func (b *builder) ddpIteration(scale float64, gate *task.Task,
	suffix string) *task.Task {

	n := b.cfg.NumGPUs

	// Forward on every replica.
	lastFwd := make([]*task.Task, n)
	for i := 0; i < n; i++ {
		load := b.stageInput(b.node(i), scale, gate,
			fmt.Sprintf("stage-input-g%d%s", i, suffix))
		lastFwd[i] = b.emitSeq(i, b.fwd, scale, 1, load, suffix)
	}

	// Backward, tracking bucket fills. bwd ops are already in reverse layer
	// order in the trace.
	type bucket struct {
		bytes   float64
		gates   []*task.Task // per GPU, last contributing bwd op
		started bool
	}
	cur := &bucket{gates: make([]*task.Task, n)}
	var prevCollective *task.Task
	var allReduces []*task.Task
	prevBwd := make([]*task.Task, n)
	copy(prevBwd, lastFwd)

	flush := func(idx int) {
		if cur.bytes <= 0 {
			return
		}
		// Gate each rank on its bucket-completing bwd op plus the previous
		// bucket's AllReduce (NCCL serializes collectives per stream).
		gates := make([]*task.Task, n)
		for i := 0; i < n; i++ {
			gt := b.g.AddBarrier(fmt.Sprintf("bucket%d-ready-g%d%s",
				idx, i, suffix))
			b.g.AddDep(cur.gates[i], gt)
			if prevCollective != nil {
				b.g.AddDep(prevCollective, gt)
			}
			gates[i] = gt
		}
		ar := b.allReduce(b.ringNodes(), cur.bytes,
			b.permuteGates(gates),
			collective.Options{
				StepDelay: b.cfg.Effects.CommStepLatency,
				Label:     fmt.Sprintf("allreduce-b%d%s", idx, suffix),
				Log:       b.cfg.Collectives,
			})
		prevCollective = ar
		allReduces = append(allReduces, ar)
		cur = &bucket{gates: make([]*task.Task, n)}
	}

	bucketIdx := 0
	for _, idx := range b.bwd {
		op := &b.tr.Ops[idx]
		for i := 0; i < n; i++ {
			t := b.g.AddCompute(b.phys(i), b.opDuration(op, scale, 1),
				op.Name+suffix)
			t.Layer = op.Layer
			b.g.AddDep(prevBwd[i], t)
			prevBwd[i] = t
			cur.gates[i] = t
		}
		cur.bytes += b.gradBytesOf(op)
		if cur.bytes >= b.cfg.BucketBytes {
			flush(bucketIdx)
			bucketIdx++
		}
	}
	flush(bucketIdx)

	b.lastBuckets = len(allReduces)

	// Optimizer waits for the final AllReduce and local backward.
	end := b.g.AddBarrier("iter-done" + suffix)
	for i := 0; i < n; i++ {
		optGate := b.g.AddBarrier(fmt.Sprintf("opt-gate-g%d%s", i, suffix))
		b.g.AddDep(prevBwd[i], optGate)
		if prevCollective != nil {
			b.g.AddDep(prevCollective, optGate)
		}
		opt := b.emitSeq(i, b.opt, scale, 1, optGate, suffix)
		b.g.AddDep(opt, end)
	}
	return end
}
