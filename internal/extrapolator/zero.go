package extrapolator

import (
	"fmt"

	"triosim/internal/collective"
	"triosim/internal/task"
	"triosim/internal/telemetry"
)

// DataParallelZeRO extrapolates ZeRO stage-1 data parallelism (the
// optimizer-state-sharding family the paper cites via ZeRO-Offload [61]):
// forward and backward replicate as in DP, but gradients are
// reduce-scattered so each rank reduces only its 1/N shard, the optimizer
// updates that shard alone, and an all-gather rematerializes the full
// parameters for the next iteration. Communication volume matches ring
// AllReduce (reduce-scatter + all-gather is its two halves) while the
// optimizer work and its state shrink by N.
func DataParallelZeRO(cfg Config) (*Result, error) {
	b, err := newBuilder(cfg)
	if err != nil {
		return nil, err
	}
	cfg = b.cfg
	n := cfg.NumGPUs
	scale := float64(cfg.GlobalBatch) / float64(n) / float64(b.tr.BatchSize)
	shard := 1.0 / float64(n)

	res := &Result{Graph: b.g,
		Meta: telemetry.ParallelStat{Strategy: "zero1", Replicas: n}}
	gate := b.g.AddBarrier("start")
	for it := 0; it < cfg.Iterations; it++ {
		suffix := fmt.Sprintf("-it%d", it)

		// Replicated forward + backward.
		lastBwd := make([]*task.Task, n)
		for i := 0; i < n; i++ {
			load := b.stageInput(b.node(i), scale, gate,
				fmt.Sprintf("stage-input-g%d%s", i, suffix))
			last := b.emitSeq(i, b.fwd, scale, 1, load, suffix)
			lastBwd[i] = b.emitSeq(i, b.bwd, scale, 1, last, suffix)
		}

		end := b.g.AddBarrier("iter-done" + suffix)
		if cfg.ForwardOnly {
			for i := 0; i < n; i++ {
				b.g.AddDep(lastBwd[i], end)
			}
			res.IterationEnds = append(res.IterationEnds, end)
			gate = end
			continue
		}

		opts := collective.Options{
			StepDelay: b.cfg.Effects.CommStepLatency,
			Log:       b.cfg.Collectives,
		}
		// Reduce-scatter the gradients: each rank ends with its reduced
		// shard.
		opts.Label = "zero-rs" + suffix
		rs := collective.RingReduceScatter(b.g, b.ringNodes(),
			float64(b.tr.GradientBytes()), b.permuteGates(lastBwd), opts)

		// Sharded optimizer step on every rank.
		optDone := make([]*task.Task, n)
		for i := 0; i < n; i++ {
			last := rs
			for _, idx := range b.opt {
				op := &b.tr.Ops[idx]
				t := b.g.AddCompute(b.phys(i),
					b.opDuration(op, scale, shard), op.Name+suffix)
				t.Layer = op.Layer
				b.g.AddDep(last, t)
				last = t
			}
			optDone[i] = last
		}

		// All-gather the updated parameter shards.
		opts.Label = "zero-ag" + suffix
		ag := collective.RingAllGather(b.g, b.ringNodes(),
			float64(b.tr.WeightBytes()), b.permuteGates(optDone), opts)
		b.g.AddDep(ag, end)

		res.IterationEnds = append(res.IterationEnds, end)
		gate = end
	}
	return res, nil
}
