package extrapolator

import (
	"fmt"

	"triosim/internal/collective"
	"triosim/internal/task"
	"triosim/internal/telemetry"
)

// layerGroup is a run of consecutive same-layer op indices.
type layerGroup struct {
	layer int
	ops   []int
}

// groupByLayer splits an op index sequence into consecutive layer runs.
func (b *builder) groupByLayer(ops []int) []layerGroup {
	var out []layerGroup
	for _, idx := range ops {
		l := b.tr.Ops[idx].Layer
		if len(out) == 0 || out[len(out)-1].layer != l {
			out = append(out, layerGroup{layer: l})
		}
		out[len(out)-1].ops = append(out[len(out)-1].ops, idx)
	}
	return out
}

// TensorParallel extrapolates the trace to N-GPU tensor-parallel training:
// each parallelizable operator's tensor (weights and the corresponding
// work) is divided across the GPUs; at the end of each such layer the GPUs
// gather the partial outputs from all devices (paper §4.3). The batch is
// replicated, not split.
func TensorParallel(cfg Config) (*Result, error) {
	b, err := newBuilder(cfg)
	if err != nil {
		return nil, err
	}
	cfg = b.cfg
	n := cfg.NumGPUs
	scale := float64(cfg.GlobalBatch) / float64(b.tr.BatchSize)
	shard := 1.0 / float64(n)

	res := &Result{Graph: b.g,
		Meta: telemetry.ParallelStat{Strategy: "tp", Replicas: n}}
	gate := b.g.AddBarrier("start")
	for it := 0; it < cfg.Iterations; it++ {
		suffix := fmt.Sprintf("-it%d", it)
		end := b.tpIteration(scale, shard, gate, suffix)
		res.IterationEnds = append(res.IterationEnds, end)
		gate = end
	}
	return res, nil
}

// tpLayers emits one phase's layers with per-layer collectives. mkColl
// builds the boundary collective for a layer given the per-rank gates and
// boundary bytes.
func (b *builder) tpLayers(groups []layerGroup, scale, shard float64,
	prev []*task.Task, suffix, phase string) []*task.Task {

	n := len(prev)
	for _, grp := range groups {
		hasPar := false
		lastOps := make([]*task.Task, n)
		for _, idx := range grp.ops {
			op := &b.tr.Ops[idx]
			sh := 1.0
			if op.Parallelizable {
				sh = shard
				hasPar = true
			}
			for i := 0; i < n; i++ {
				t := b.g.AddCompute(b.phys(i), b.opDuration(op, scale, sh),
					op.Name+suffix)
				t.Layer = op.Layer
				b.g.AddDep(prev[i], t)
				prev[i] = t
				lastOps[i] = t
			}
		}
		if !hasPar || len(grp.ops) == 0 {
			continue
		}
		// Boundary tensor: the layer's final output activation at full
		// (unsharded) size — every rank must end up with the whole result.
		lastOp := &b.tr.Ops[grp.ops[len(grp.ops)-1]]
		boundary := b.outBytes(lastOp, scale)
		opts := collective.Options{
			StepDelay: b.cfg.Effects.CommStepLatency,
			Label: fmt.Sprintf("tp-%s-l%d%s", phase, grp.layer,
				suffix),
			Log: b.cfg.Collectives,
		}
		var coll *task.Task
		if phase == "fwd" {
			coll = collective.RingAllGather(b.g, b.ringNodes(), boundary,
				b.permuteGates(lastOps), opts)
		} else {
			coll = collective.RingAllReduce(b.g, b.ringNodes(), boundary,
				b.permuteGates(lastOps), opts)
		}
		if b.cfg.Effects.TPSyncPerLayer.After(0) {
			d := b.g.AddDelay(b.cfg.Effects.TPSyncPerLayer,
				fmt.Sprintf("tp-sync-l%d-%s%s", grp.layer, phase, suffix))
			b.g.AddDep(coll, d)
			coll = d
		}
		for i := 0; i < n; i++ {
			prev[i] = coll
		}
	}
	return prev
}

func (b *builder) tpIteration(scale, shard float64, gate *task.Task,
	suffix string) *task.Task {

	n := b.cfg.NumGPUs
	prev := make([]*task.Task, n)
	for i := 0; i < n; i++ {
		// Tensor parallelism replicates the input batch on every rank.
		prev[i] = b.stageInput(b.node(i), scale, gate,
			fmt.Sprintf("stage-input-g%d%s", i, suffix))
	}

	prev = b.tpLayers(b.groupByLayer(b.fwd), scale, shard, prev, suffix, "fwd")
	prev = b.tpLayers(b.groupByLayer(b.bwd), scale, shard, prev, suffix, "bwd")

	// Optimizer updates the local weight shard only.
	end := b.g.AddBarrier("iter-done" + suffix)
	for i := 0; i < n; i++ {
		last := prev[i]
		for _, idx := range b.opt {
			op := &b.tr.Ops[idx]
			t := b.g.AddCompute(b.phys(i), b.opDuration(op, scale, shard),
				op.Name+suffix)
			t.Layer = op.Layer
			b.g.AddDep(last, t)
			last = t
		}
		b.g.AddDep(last, end)
	}
	return end
}
