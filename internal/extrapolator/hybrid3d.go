package extrapolator

import (
	"fmt"

	"triosim/internal/collective"
	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
	"triosim/internal/telemetry"
)

// Hybrid3D extrapolates the trace to full 3D parallelism — DP×TP×PP, the
// cluster-scale Megatron-style layout: dp pipeline replicas, each a GPipe
// pipeline of pp stages, each stage tensor-parallel across tp ranks.
//
// GPU layout (machine-major clusters line up automatically when tp equals
// the machine size): replica d, stage s, rank r → physical GPU
// d·tp·pp + s·tp + r. Stage boundaries ship sharded activations rank-to-rank
// (rail-aligned); after the backward drain, each (stage, rank) gradient
// shard AllReduces across the dp replicas via builder.allReduce, which
// selects the hierarchical schedule on tiered topologies.
//
// With cfg.FuseCompute set, each (stage, micro-batch, rank) op chain
// collapses into one compute task and the per-layer TP syncs coalesce into
// one FusedRingStep per chunk — the graph-size reduction that makes
// 10,000-GPU steps simulable in seconds.
func Hybrid3D(cfg Config, dp, tp, pp int) (*Result, error) {
	b, err := newBuilder(cfg)
	if err != nil {
		return nil, err
	}
	cfg = b.cfg
	if dp < 1 || tp < 1 || pp < 1 {
		return nil, fmt.Errorf("extrapolator: 3d grid %d×%d×%d", dp, tp, pp)
	}
	if dp*tp*pp != cfg.NumGPUs {
		return nil, fmt.Errorf("extrapolator: 3d grid %d×%d×%d ≠ %d GPUs",
			dp, tp, pp, cfg.NumGPUs)
	}
	if cfg.GlobalBatch%dp != 0 {
		return nil, fmt.Errorf("extrapolator: batch %d not divisible by %d replicas",
			cfg.GlobalBatch, dp)
	}
	m := cfg.MicroBatches
	microScale := float64(cfg.GlobalBatch) / float64(dp) / float64(m) /
		float64(b.tr.BatchSize)
	shard := 1.0 / float64(tp)

	// Balanced layer→stage assignment, shared by every replica.
	stageOf := StageAssignment(b.tr, pp)
	fwdOps := make([][]int, pp)
	bwdOps := make([][]int, pp)
	optOps := make([][]int, pp)
	for _, idx := range b.fwd {
		s := stageOf[b.tr.Ops[idx].Layer]
		fwdOps[s] = append(fwdOps[s], idx)
	}
	for _, idx := range b.bwd {
		s := stageOf[b.tr.Ops[idx].Layer]
		bwdOps[s] = append(bwdOps[s], idx)
	}
	for _, idx := range b.opt {
		s := stageOf[b.tr.Ops[idx].Layer]
		optOps[s] = append(optOps[s], idx)
	}

	// Per-stage precomputation: fused durations, TP sync payloads, stage
	// boundary bytes, owned gradient bytes. Identical across replicas and
	// micro-batches, so pricing runs once, not dp·m times.
	type stagePre struct {
		fwdDur, bwdDur, optDur sim.VTime
		fwdRuns, bwdRuns       []layerGroup
		syncFwd, syncBwd       float64 // TP boundary bytes per chunk
		boundary               float64 // activation bytes leaving the stage
		gradBytes              float64
	}
	pre := make([]stagePre, pp)
	sumDur := func(ops []int) sim.VTime {
		var total sim.VTime
		for _, idx := range ops {
			op := &b.tr.Ops[idx]
			sh := 1.0
			if op.Parallelizable {
				sh = shard
			}
			total += b.opDuration(op, microScale, sh)
		}
		return total
	}
	syncBytes := func(runs []layerGroup) float64 {
		var total float64
		for _, grp := range runs {
			par := false
			for _, idx := range grp.ops {
				if b.tr.Ops[idx].Parallelizable {
					par = true
					break
				}
			}
			if par && len(grp.ops) > 0 {
				last := &b.tr.Ops[grp.ops[len(grp.ops)-1]]
				total += b.outBytes(last, microScale)
			}
		}
		return total
	}
	for s := 0; s < pp; s++ {
		p := &pre[s]
		p.fwdRuns = b.groupByLayer(fwdOps[s])
		p.bwdRuns = b.groupByLayer(bwdOps[s])
		p.fwdDur = sumDur(fwdOps[s])
		p.bwdDur = sumDur(bwdOps[s])
		p.syncFwd = syncBytes(p.fwdRuns)
		p.syncBwd = syncBytes(p.bwdRuns)
		if len(fwdOps[s]) > 0 {
			last := &b.tr.Ops[fwdOps[s][len(fwdOps[s])-1]]
			p.boundary = b.outBytes(last, microScale)
		}
		for _, idx := range bwdOps[s] {
			p.gradBytes += b.gradBytesOf(&b.tr.Ops[idx])
		}
		for _, idx := range optOps[s] {
			op := &b.tr.Ops[idx]
			p.optDur += b.opDuration(op, 1, shard)
		}
	}

	gpuAt := func(d, s, r int) int { return d*tp*pp + s*tp + r }
	tpNodes := func(d, s int) []network.NodeID {
		out := make([]network.NodeID, tp)
		for r := 0; r < tp; r++ {
			out[r] = b.gpus[gpuAt(d, s, r)]
		}
		return out
	}

	// emitChunk runs one (replica, stage, micro) chunk across the tp ranks:
	// compute (fused or per-op) then the TP boundary sync. deps[r] gates
	// rank r. Returns the per-rank completion tasks.
	emitChunk := func(d, s int, deps [][]*task.Task, fwd bool,
		label string) []*task.Task {

		p := &pre[s]
		dur, runs, sync := p.fwdDur, p.fwdRuns, p.syncFwd
		if !fwd {
			dur, runs, sync = p.bwdDur, p.bwdRuns, p.syncBwd
		}
		last := make([]*task.Task, tp)
		if cfg.FuseCompute {
			for r := 0; r < tp; r++ {
				t := b.g.AddCompute(gpuAt(d, s, r), dur, label)
				for _, dep := range deps[r] {
					b.g.AddDep(dep, t)
				}
				last[r] = t
			}
			if tp > 1 && sync > 0 {
				bus := float64(tp-1) / float64(tp)
				if !fwd {
					bus *= 2 // allreduce, not allgather
				}
				coll := collective.FusedRingStep(b.g, tpNodes(d, s), sync,
					bus, last, collective.Options{
						StepDelay: b.cfg.Effects.CommStepLatency,
						Label:     label + "-tpsync",
						Log:       b.cfg.Collectives,
					})
				for r := 0; r < tp; r++ {
					last[r] = coll
				}
			}
			return last
		}

		// Unfused: per-op chains with a ring collective at each
		// parallelizable layer boundary, as in TensorParallel.
		prev := make([]*task.Task, tp)
		for r := 0; r < tp; r++ {
			entry := b.g.AddBarrier(label + "-entry")
			for _, dep := range deps[r] {
				b.g.AddDep(dep, entry)
			}
			prev[r] = entry
		}
		for _, grp := range runs {
			hasPar := false
			lastOps := make([]*task.Task, tp)
			for _, idx := range grp.ops {
				op := &b.tr.Ops[idx]
				sh := 1.0
				if op.Parallelizable {
					sh = shard
					hasPar = true
				}
				for r := 0; r < tp; r++ {
					t := b.g.AddCompute(gpuAt(d, s, r),
						b.opDuration(op, microScale, sh), b.label(op.Name, label))
					t.Layer = op.Layer
					b.g.AddDep(prev[r], t)
					prev[r] = t
					lastOps[r] = t
				}
			}
			if !hasPar || tp == 1 || len(grp.ops) == 0 {
				continue
			}
			lastOp := &b.tr.Ops[grp.ops[len(grp.ops)-1]]
			bound := b.outBytes(lastOp, microScale)
			opts := collective.Options{
				StepDelay: b.cfg.Effects.CommStepLatency,
				Label:     fmt.Sprintf("%s-tp-l%d", label, grp.layer),
				Log:       b.cfg.Collectives,
			}
			var coll *task.Task
			if fwd {
				coll = collective.RingAllGather(b.g, tpNodes(d, s), bound,
					lastOps, opts)
			} else {
				coll = collective.RingAllReduce(b.g, tpNodes(d, s), bound,
					lastOps, opts)
			}
			for r := 0; r < tp; r++ {
				prev[r] = coll
			}
		}
		return prev
	}

	res := &Result{Graph: b.g,
		Meta: telemetry.ParallelStat{Strategy: "dp+tp+pp", Replicas: dp,
			Stages: pp, TPRanks: tp, StageOfLayer: stageOf}}
	gate := b.g.AddBarrier("start")
	for it := 0; it < cfg.Iterations; it++ {
		suffix := fmt.Sprintf("-it%d", it)
		bwdDone := make([][][]*task.Task, dp) // [d][s][r]

		for d := 0; d < dp; d++ {
			dsuffix := fmt.Sprintf("%s-d%d", suffix, d)

			// Forward pipeline (GPipe) with sharded rank-to-rank boundary
			// sends: rank r of stage s ships its 1/tp activation slice to
			// rank r of stage s+1 over the rail.
			fwdLast := make([][][]*task.Task, pp) // [s][mb][r]
			arrive := make([][][]*task.Task, pp)
			for s := 0; s < pp; s++ {
				fwdLast[s] = make([][]*task.Task, m)
				arrive[s] = make([][]*task.Task, m)
			}
			for mb := 0; mb < m; mb++ {
				load := b.stageInput(b.gpus[gpuAt(d, 0, 0)], microScale, gate,
					fmt.Sprintf("stage-input-mb%d%s", mb, dsuffix))
				arrive[0][mb] = make([]*task.Task, tp)
				for r := 0; r < tp; r++ {
					arrive[0][mb][r] = load
				}
			}
			for s := 0; s < pp; s++ {
				for mb := 0; mb < m; mb++ {
					deps := make([][]*task.Task, tp)
					for r := 0; r < tp; r++ {
						deps[r] = []*task.Task{arrive[s][mb][r]}
						if mb > 0 {
							deps[r] = append(deps[r], fwdLast[s][mb-1][r])
						}
					}
					last := emitChunk(d, s, deps, true,
						fmt.Sprintf("fwd-s%d-mb%d%s", s, mb, dsuffix))
					fwdLast[s][mb] = last
					if s+1 < pp {
						arrive[s+1][mb] = make([]*task.Task, tp)
						for r := 0; r < tp; r++ {
							send := b.g.AddComm(b.gpus[gpuAt(d, s, r)],
								b.gpus[gpuAt(d, s+1, r)],
								pre[s].boundary*shard,
								fmt.Sprintf("act-s%d-mb%d-r%d%s", s, mb, r,
									dsuffix))
							send.MicroBatch = mb
							b.g.AddDep(last[r], send)
							arrive[s+1][mb][r] = send
						}
					}
				}
			}

			if cfg.ForwardOnly {
				bwdDone[d] = make([][]*task.Task, pp)
				for s := 0; s < pp; s++ {
					bwdDone[d][s] = fwdLast[s][m-1]
				}
				continue
			}

			// Backward: GPipe flush, reverse micro-batch order, sharded
			// gradient sends back down the rails.
			gradArrive := make([][][]*task.Task, pp)
			for s := 0; s < pp; s++ {
				gradArrive[s] = make([][]*task.Task, m)
			}
			bwdDone[d] = make([][]*task.Task, pp)
			for s := pp - 1; s >= 0; s-- {
				var prevMicro []*task.Task
				for k := 0; k < m; k++ {
					mb := m - 1 - k
					deps := make([][]*task.Task, tp)
					for r := 0; r < tp; r++ {
						deps[r] = []*task.Task{fwdLast[s][m-1][r]}
						if gradArrive[s][mb] != nil {
							deps[r] = append(deps[r], gradArrive[s][mb][r])
						}
						if prevMicro != nil {
							deps[r] = append(deps[r], prevMicro[r])
						}
					}
					last := emitChunk(d, s, deps, false,
						fmt.Sprintf("bwd-s%d-mb%d%s", s, mb, dsuffix))
					prevMicro = last
					if s > 0 {
						gradArrive[s-1][mb] = make([]*task.Task, tp)
						for r := 0; r < tp; r++ {
							send := b.g.AddComm(b.gpus[gpuAt(d, s, r)],
								b.gpus[gpuAt(d, s-1, r)],
								pre[s-1].boundary*shard,
								fmt.Sprintf("grad-s%d-mb%d-r%d%s", s, mb, r,
									dsuffix))
							send.MicroBatch = mb
							b.g.AddDep(last[r], send)
							gradArrive[s-1][mb][r] = send
						}
					}
				}
				bwdDone[d][s] = prevMicro
			}
		}

		end := b.g.AddBarrier("iter-done" + suffix)
		if cfg.ForwardOnly {
			for d := 0; d < dp; d++ {
				for s := 0; s < pp; s++ {
					for r := 0; r < tp; r++ {
						b.g.AddDep(bwdDone[d][s][r], end)
					}
				}
			}
			res.IterationEnds = append(res.IterationEnds, end)
			gate = end
			continue
		}

		// Cross-replica gradient AllReduce per (stage, rank) shard; the
		// dispatcher picks the hierarchical schedule on tiered topologies.
		// Then the sharded optimizer, fused into one task per GPU.
		for s := 0; s < pp; s++ {
			for r := 0; r < tp; r++ {
				ring := make([]network.NodeID, dp)
				gates := make([]*task.Task, dp)
				for d := 0; d < dp; d++ {
					ring[d] = b.gpus[gpuAt(d, s, r)]
					gates[d] = bwdDone[d][s][r]
				}
				ar := b.allReduce(ring, pre[s].gradBytes*shard, gates,
					collective.Options{
						StepDelay: b.cfg.Effects.CommStepLatency,
						Label: fmt.Sprintf("3d-allreduce-s%d-r%d%s", s, r,
							suffix),
						Log: b.cfg.Collectives,
					})
				for d := 0; d < dp; d++ {
					var opt *task.Task
					if cfg.FuseCompute {
						opt = b.g.AddCompute(gpuAt(d, s, r), pre[s].optDur,
							fmt.Sprintf("opt-s%d-r%d%s-d%d", s, r, suffix, d))
						b.g.AddDep(ar, opt)
					} else {
						prev := ar
						for _, idx := range optOps[s] {
							op := &b.tr.Ops[idx]
							t := b.g.AddCompute(gpuAt(d, s, r),
								b.opDuration(op, 1, shard), op.Name+suffix)
							t.Layer = op.Layer
							b.g.AddDep(prev, t)
							prev = t
						}
						opt = prev
					}
					b.g.AddDep(opt, end)
				}
			}
		}
		res.IterationEnds = append(res.IterationEnds, end)
		gate = end
	}
	return res, nil
}
