package extrapolator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"triosim/internal/gpu"
	"triosim/internal/hwsim"
	"triosim/internal/network"
	"triosim/internal/perfmodel"
	"triosim/internal/sim"
	"triosim/internal/task"
	"triosim/internal/timeline"
	"triosim/internal/trace"
)

// testSetup returns a stamped trace, a fitted model, and a topology.
func testSetup(t *testing.T, model string, batch, nGPUs int) (*trace.Trace,
	*perfmodel.Model, *network.Topology) {
	t.Helper()
	tr, err := hwsim.CollectTrace(model, batch, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perfmodel.Fit(tr)
	if err != nil {
		t.Fatal(err)
	}
	topo := network.Switch(network.Config{
		NumGPUs:       nGPUs,
		LinkBandwidth: 235e9,
		LinkLatency:   1 * sim.USec,
		HostBandwidth: 20e9,
		HostLatency:   5 * sim.USec,
	})
	return tr, m, topo
}

// runCfg executes the result graph and returns makespan and timeline.
func runCfg(t *testing.T, cfg Config, res *Result) (sim.VTime,
	*timeline.Timeline, *network.FlowNetwork) {
	t.Helper()
	eng := sim.NewSerialEngine()
	net := network.NewFlowNetwork(eng, cfg.Topo)
	tl := timeline.New()
	makespan, err := task.NewExecutor(eng, net, res.Graph, tl).Run()
	if err != nil {
		t.Fatal(err)
	}
	return makespan, tl, net
}

func TestSingleGPUReplayMatchesTrace(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 32, 1)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 1, Timer: m}
	res, err := SingleGPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	makespan, tl, _ := runCfg(t, cfg.defaults(), res)
	// Replay (scale=1, passthrough) compute time equals the trace total.
	compute := tl.SumTime(timeline.ByPhase("compute"))
	if math.Abs(float64(compute-tr.TotalTime()))/float64(tr.TotalTime()) > 1e-9 {
		t.Fatalf("replayed compute %v != trace total %v",
			compute, tr.TotalTime())
	}
	// Makespan additionally includes the input staging.
	if makespan <= tr.TotalTime() {
		t.Fatalf("makespan %v should exceed compute-only %v",
			makespan, tr.TotalTime())
	}
}

func TestSingleGPUBatchScaling(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 1)
	base, err := SingleGPU(Config{Trace: tr, Topo: topo, NumGPUs: 1, Timer: m})
	if err != nil {
		t.Fatal(err)
	}
	big, err := SingleGPU(Config{Trace: tr, Topo: topo, NumGPUs: 1, Timer: m,
		GlobalBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 1, Timer: m}
	t0, _, _ := runCfg(t, cfg.defaults(), base)
	t1, _, _ := runCfg(t, cfg.defaults(), big)
	r := float64(t1) / float64(t0)
	if r < 1.5 || r > 2.2 {
		t.Fatalf("batch 64→128 time ratio %.3f, want ≈2", r)
	}
}

func TestDataParallelStructure(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m}
	res, err := DataParallel(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	makespan, tl, net := runCfg(t, cfg.defaults(), res)
	if makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// All 4 GPUs computed.
	for i := 0; i < 4; i++ {
		res := timeline.ByResource("gpu" + string(rune('0'+i)))
		if tl.UnionTime(res) <= 0 {
			t.Fatalf("gpu%d idle", i)
		}
	}
	// AllReduce traffic: 2(N−1)/N·B per rank × N ranks = 2(N−1)·B total.
	wantComm := 2 * 3 * float64(tr.GradientBytes())
	commBytes := net.TotalBytes - 4*float64(tr.InputBytes())/4*4 // minus staging? just lower-bound:
	_ = commBytes
	if net.TotalBytes < wantComm {
		t.Fatalf("traffic %g below allreduce volume %g",
			net.TotalBytes, wantComm)
	}
}

func TestDPFasterThanSingleGPU(t *testing.T) {
	// Same global batch on 4 GPUs vs 1 GPU: DP should win handily on an
	// NVSwitch platform.
	tr, m, topo := testSetup(t, "resnet50", 128, 4)
	single, err := SingleGPU(Config{Trace: tr, Topo: topo, NumGPUs: 1, Timer: m})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := DataParallel(Config{Trace: tr, Topo: topo, NumGPUs: 4,
		Timer: m}, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m}
	t1, _, _ := runCfg(t, cfg.defaults(), single)
	t4, _, _ := runCfg(t, cfg.defaults(), dp)
	speedup := float64(t1) / float64(t4)
	if speedup < 2 || speedup > 4.2 {
		t.Fatalf("4-GPU DDP speedup %.2f implausible", speedup)
	}
}

func TestDDPNotSlowerThanStdDP(t *testing.T) {
	tr, m, topo := testSetup(t, "vgg11", 128, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m}
	std, err := DataParallel(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	ddp, err := DataParallel(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	tStd, _, _ := runCfg(t, cfg.defaults(), std)
	tDdp, _, _ := runCfg(t, cfg.defaults(), ddp)
	// Overlapping comm with backward can only help (same volumes).
	if tDdp > tStd*sim.VTime(1.001) {
		t.Fatalf("DDP %v slower than std DP %v", tDdp, tStd)
	}
	// For a comm-heavy model like VGG, overlap should visibly help.
	if tDdp > tStd*sim.VTime(0.995) {
		t.Logf("warning: DDP %v barely beats std DP %v", tDdp, tStd)
	}
}

func TestDDPBucketCount(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 32, 2)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 2, Timer: m,
		BucketBytes: 5 << 20}
	res, err := DataParallel(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct allreduce buckets via comm task labels.
	buckets := map[string]bool{}
	for _, tk := range res.Graph.Tasks {
		if tk.Kind == task.Comm && len(tk.Label) > 11 &&
			tk.Label[:11] == "allreduce-b" {
			// label: allreduce-b<k>-it0-step...
			end := 11
			for end < len(tk.Label) && tk.Label[end] != '-' {
				end++
			}
			buckets[tk.Label[:end]] = true
		}
	}
	// ResNet-18 has ~46.7 MB of gradients; with 5 MB buckets (and single
	// >5 MB gradients overflowing a bucket alone) several buckets form.
	if len(buckets) < 5 {
		t.Fatalf("only %d buckets for 5 MB bucket size", len(buckets))
	}
	// And a 1 GB bucket collapses everything into a single AllReduce.
	cfgBig := Config{Trace: tr, Topo: topo, NumGPUs: 2, Timer: m,
		BucketBytes: 1 << 30}
	resBig, err := DataParallel(cfgBig, true)
	if err != nil {
		t.Fatal(err)
	}
	bigBuckets := map[string]bool{}
	for _, tk := range resBig.Graph.Tasks {
		if tk.Kind == task.Comm && len(tk.Label) > 11 &&
			tk.Label[:11] == "allreduce-b" {
			end := 11
			for end < len(tk.Label) && tk.Label[end] != '-' {
				end++
			}
			bigBuckets[tk.Label[:end]] = true
		}
	}
	if len(bigBuckets) != 1 {
		t.Fatalf("%d buckets with 1 GB bucket size, want 1", len(bigBuckets))
	}
}

func TestTensorParallelStructure(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m}
	res, err := TensorParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	makespan, tl, net := runCfg(t, cfg.defaults(), res)
	if makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if net.TotalTransfers == 0 {
		t.Fatal("tensor parallelism generated no communication")
	}
	// Per-GPU compute must shrink vs the single-GPU replay (shards).
	single, _ := SingleGPU(Config{Trace: tr, Topo: topo, NumGPUs: 1, Timer: m})
	_, tlS, _ := runCfg(t, cfg.defaults(), single)
	tpGPU0 := tl.SumTime(timeline.And(
		timeline.ByResource("gpu0"), timeline.ByPhase("compute")))
	soloGPU0 := tlS.SumTime(timeline.And(
		timeline.ByResource("gpu0"), timeline.ByPhase("compute")))
	if tpGPU0 >= soloGPU0 {
		t.Fatalf("TP gpu0 compute %v not below single-GPU %v",
			tpGPU0, soloGPU0)
	}
}

func TestPipelineParallelStructure(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 128, 2)
	for _, chunks := range []int{1, 2, 4} {
		cfg := Config{Trace: tr, Topo: topo, NumGPUs: 2, Timer: m,
			MicroBatches: chunks}
		res, err := PipelineParallel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("chunks=%d: %v", chunks, err)
		}
		makespan, _, net := runCfg(t, cfg.defaults(), res)
		if makespan <= 0 {
			t.Fatalf("chunks=%d: zero makespan", chunks)
		}
		// Boundary traffic: m micro-batches × (act fwd + grad bwd).
		wantTransfers := chunks * 2
		gotComm := 0
		for _, tk := range res.Graph.Tasks {
			if tk.Kind == task.Comm {
				gotComm++
			}
		}
		if gotComm != wantTransfers {
			t.Fatalf("chunks=%d: %d comm tasks, want %d",
				chunks, gotComm, wantTransfers)
		}
		_ = net
	}
}

func TestPipelineMoreChunksHelpWithoutOverheads(t *testing.T) {
	// With zero CPU overheads (TrioSim's own view), more micro-batches can
	// only shrink or hold the bubble, so time must not increase materially.
	tr, m, topo := testSetup(t, "vgg16", 128, 4)
	var prev sim.VTime
	for i, chunks := range []int{1, 2, 4} {
		cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m,
			MicroBatches: chunks}
		res, err := PipelineParallel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		makespan, _, _ := runCfg(t, cfg.defaults(), res)
		if i > 0 && makespan > prev*sim.VTime(1.10) {
			t.Fatalf("chunks=%d (%v) much slower than previous (%v)",
				chunks, makespan, prev)
		}
		prev = makespan
	}
}

func TestPipelineCPUOverheadAnomaly(t *testing.T) {
	// With hardware CPU scheduling overheads and a small fast model, more
	// chunks can *increase* end-to-end time — the paper's orange-triangle
	// anomaly (Fig 10).
	tr, err := hwsim.CollectTrace("resnet18", 32, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	topo := network.Switch(network.Config{
		NumGPUs: 4, LinkBandwidth: 235e9, HostBandwidth: 20e9,
	})
	hwTimer := hwsim.NewTimer(&gpu.A100)
	eff := hwsim.Effects{CPUSchedPerMicroBatch: 2 * sim.MSec}
	times := map[int]sim.VTime{}
	for _, chunks := range []int{1, 4} {
		cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: hwTimer,
			MicroBatches: chunks, Effects: eff}
		res, err := PipelineParallel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		makespan, _, _ := runCfg(t, cfg.defaults(), res)
		times[chunks] = makespan
	}
	if times[4] <= times[1] {
		t.Fatalf("CPU overhead anomaly absent: 4 chunks %v <= 1 chunk %v",
			times[4], times[1])
	}
}

func TestIterationsChain(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 32, 2)
	cfg1 := Config{Trace: tr, Topo: topo, NumGPUs: 2, Timer: m, Iterations: 1}
	cfg3 := Config{Trace: tr, Topo: topo, NumGPUs: 2, Timer: m, Iterations: 3}
	r1, err := DataParallel(cfg1, true)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := DataParallel(cfg3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.IterationEnds) != 3 {
		t.Fatalf("iteration ends = %d", len(r3.IterationEnds))
	}
	t1, _, _ := runCfg(t, cfg1.defaults(), r1)
	t3, _, _ := runCfg(t, cfg3.defaults(), r3)
	r := float64(t3) / float64(t1)
	if r < 2.99 || r > 3.01 {
		t.Fatalf("3 iterations / 1 iteration = %.4f, want 3", r)
	}
}

func TestDeterminism(t *testing.T) {
	tr, m, topo := testSetup(t, "densenet121", 32, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m}
	var times []sim.VTime
	for i := 0; i < 2; i++ {
		res, err := DataParallel(cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		ms, _, _ := runCfg(t, cfg.defaults(), res)
		times = append(times, ms)
	}
	if times[0] != times[1] {
		t.Fatalf("nondeterministic: %v vs %v", times[0], times[1])
	}
}

func TestConfigValidation(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 32, 2)
	if _, err := SingleGPU(Config{Topo: topo, NumGPUs: 1, Timer: m}); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := SingleGPU(Config{Trace: tr, NumGPUs: 1, Timer: m}); err == nil {
		t.Fatal("nil topo accepted")
	}
	if _, err := SingleGPU(Config{Trace: tr, Topo: topo, NumGPUs: 1}); err == nil {
		t.Fatal("nil timer accepted")
	}
	if _, err := DataParallel(Config{Trace: tr, Topo: topo, NumGPUs: 0,
		Timer: m}, true); err == nil {
		t.Fatal("0 GPUs accepted")
	}
	if _, err := DataParallel(Config{Trace: tr, Topo: topo, NumGPUs: 99,
		Timer: m}, true); err == nil {
		t.Fatal("too many GPUs accepted")
	}
}

func TestPartitionStagesProperties(t *testing.T) {
	f := func(raw []uint8, stagesRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			weights[i] = float64(r) + 1
			total += weights[i]
		}
		stages := int(stagesRaw%8) + 1
		assign := partitionStages(weights, stages)
		if len(assign) != len(weights) {
			return false
		}
		// Monotone non-decreasing, starting at 0, contiguous.
		if assign[0] != 0 {
			return false
		}
		maxStage := 0
		sums := map[int]float64{}
		for i, s := range assign {
			if i > 0 && (s < assign[i-1] || s > assign[i-1]+1) {
				return false
			}
			if s > maxStage {
				maxStage = s
			}
			sums[s] += weights[i]
		}
		if maxStage >= stages && stages <= len(weights) {
			return false
		}
		// Balance: max stage sum ≤ total (trivially) and ≥ total/stages.
		var maxSum float64
		for _, v := range sums {
			if v > maxSum {
				maxSum = v
			}
		}
		used := float64(len(sums))
		return maxSum >= total/used-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionStagesOptimal(t *testing.T) {
	// Known instance: [1,2,3,4,5] into 2 stages → best max sum is 9
	// ([1,2,3,4 | 5] gives 10; [1,2,3 | 4,5] gives 9).
	assign := partitionStages([]float64{1, 2, 3, 4, 5}, 2)
	sums := map[int]float64{}
	for i, s := range assign {
		sums[s] += []float64{1, 2, 3, 4, 5}[i]
	}
	var maxSum float64
	for _, v := range sums {
		if v > maxSum {
			maxSum = v
		}
	}
	if maxSum != 9 {
		t.Fatalf("partition max sum %v, want 9 (assign %v)", maxSum, assign)
	}
}

func TestStageAssignmentBalance(t *testing.T) {
	tr, _, _ := testSetup(t, "resnet50", 32, 4)
	assign := StageAssignment(tr, 4)
	if len(assign) != tr.NumLayers() {
		t.Fatalf("assignment covers %d layers of %d",
			len(assign), tr.NumLayers())
	}
	// Per-stage fwd time within 2× of the mean: balanced enough.
	stageTime := map[int]float64{}
	layerTime := make([]float64, tr.NumLayers())
	var total float64
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Phase == trace.Forward {
			layerTime[op.Layer] += float64(op.Time)
			total += float64(op.Time)
		}
	}
	for l, s := range assign {
		stageTime[s] += layerTime[l]
	}
	mean := total / 4
	for s, v := range stageTime {
		if v > 2*mean {
			t.Fatalf("stage %d has %.3gs of %.3gs total (unbalanced)",
				s, v, total)
		}
	}
}
