package extrapolator

import (
	"testing"

	"triosim/internal/task"
	"triosim/internal/timeline"
)

func TestZeROStructure(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m}
	res, err := DataParallelZeRO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	makespan, tl, net := runCfg(t, cfg.defaults(), res)
	if makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// Reduce-scatter of gradients + all-gather of weights: total traffic
	// (N−1)/N·(G+W)·N = (N−1)(G+W), excluding host staging.
	wantComm := 3 * float64(tr.GradientBytes()+tr.WeightBytes())
	staging := float64(tr.InputBytes()) // split across ranks, totals 1×
	got := net.TotalBytes - staging
	if rel := got/wantComm - 1; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("ZeRO traffic %g, want %g", got, wantComm)
	}
	_ = tl
}

func TestZeROShardsOptimizer(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m}
	zero, err := DataParallelZeRO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ddp, err := DataParallel(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	// The sgd_step compute per GPU shrinks substantially (the FLOPs/bytes
	// quarter, while the fitted per-kernel overhead does not shard).
	sumSGD := func(g *task.Graph) (total float64) {
		for _, tk := range g.Tasks {
			if tk.Kind == task.Compute && len(tk.Label) >= 8 &&
				tk.Label[:8] == "sgd_step" {
				total += float64(tk.Duration)
			}
		}
		return
	}
	zsgd, dsgd := sumSGD(zero.Graph), sumSGD(ddp.Graph)
	if zsgd <= 0 || dsgd <= 0 {
		t.Fatal("optimizer tasks missing")
	}
	ratio := dsgd / zsgd
	if ratio < 1.3 || ratio > 4.5 {
		t.Fatalf("DDP/ZeRO optimizer work ratio %.2f, want in (1.3, 4.5)",
			ratio)
	}
}

func TestZeROForwardOnly(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 32, 2)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 2, Timer: m,
		ForwardOnly: true}
	res, err := DataParallelZeRO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range res.Graph.Tasks {
		if tk.Kind == task.Comm {
			t.Fatalf("inference ZeRO emitted comm task %q", tk.Label)
		}
	}
	ms, _, _ := runCfg(t, cfg.defaults(), res)
	if ms <= 0 {
		t.Fatal("no time")
	}
	_ = timeline.New()
}
