// Package extrapolator converts single-GPU traces into multi-GPU execution
// task graphs according to a parallelism strategy — the paper's multi-GPU
// trace extrapolator (§4.3). It decides which GPU performs each traced
// operator, inserts data-movement tasks when tensors are not resident where
// they are needed, generates NCCL-style collective communication, and prices
// every operator through a pluggable OpTimer (the trace-provided time when
// the operator is unmodified, Li's Model when it was rescaled — §4.4).
//
// The same extrapolation logic serves two masters: TrioSim's prediction
// (OpTimer = perfmodel, Effects = none) and the reference hardware emulator's
// ground truth (OpTimer = hwsim, Effects = platform protocol overheads).
package extrapolator

import (
	"fmt"

	"triosim/internal/hwsim"
	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
	"triosim/internal/telemetry"
	"triosim/internal/tensor"
	"triosim/internal/trace"
)

// OpTimer prices one operator instance. scaled reports whether the operator
// was resized relative to the trace (different batch, shard, or micro-batch),
// in which case traceTime cannot be replayed verbatim.
type OpTimer interface {
	OpTime(name string, flops, bytes float64, traceTime sim.VTime,
		scaled bool) sim.VTime
}

// Config parameterizes an extrapolation.
type Config struct {
	// Trace is the stamped single-GPU trace.
	Trace *trace.Trace
	// Topo is the interconnect; the first NumGPUs GPU nodes are used.
	Topo *network.Topology
	// NumGPUs is how many GPUs participate.
	NumGPUs int
	// Timer prices operators.
	Timer OpTimer
	// Effects are the hardware protocol overheads (zero for TrioSim).
	Effects hwsim.Effects
	// GlobalBatch is the simulated total mini-batch size; 0 means the
	// traced batch size. Data parallelism divides it across GPUs.
	GlobalBatch int
	// MicroBatches is the GPipe chunk count for pipeline parallelism
	// (minimum 1).
	MicroBatches int
	// BucketBytes is the DDP gradient-bucket size; 0 means 25 MB.
	BucketBytes float64
	// Iterations is how many training iterations to simulate (minimum 1).
	Iterations int
	// Collective selects the AllReduce algorithm for data-parallel
	// gradient synchronization: "auto" (default: hierarchical on tiered
	// topologies, ring otherwise), "ring", "tree", or "hier".
	Collective string
	// FuseCompute collapses each sequential op chain (per stage chunk /
	// replica sequence) into one compute task with the summed duration, and
	// coalesces per-layer TP syncs into one fused ring step per chunk.
	// Durations and traffic totals are preserved; per-op task identity is
	// not, so leave it off when per-layer telemetry matters. Essential at
	// cluster scale, where the unfused graph would hold tens of millions of
	// tasks.
	FuseCompute bool
	// ForwardOnly simulates inference: only forward operators replay, and
	// no gradient synchronization or optimizer step occurs (the workload
	// class Li's Model originally targeted).
	ForwardOnly bool
	// RingOrder optionally permutes the GPUs' ring positions for
	// collective communication (e.g., a snake order that makes every ring
	// hop a mesh neighbor on wafer-scale systems). It must be a
	// permutation of [0, NumGPUs).
	RingOrder []int
	// Collectives optionally records per-collective metadata (algorithm,
	// ranks, payload bytes) for telemetry. Nil disables recording.
	Collectives *telemetry.CollectiveLog
}

func (c *Config) defaults() Config {
	out := *c
	if out.GlobalBatch == 0 {
		out.GlobalBatch = out.Trace.BatchSize
	}
	if out.MicroBatches < 1 {
		out.MicroBatches = 1
	}
	if out.BucketBytes <= 0 {
		out.BucketBytes = 25 << 20
	}
	if out.Iterations < 1 {
		out.Iterations = 1
	}
	return out
}

func (c *Config) validate() error {
	if c.Trace == nil {
		return fmt.Errorf("extrapolator: nil trace")
	}
	switch c.Collective {
	case "", "auto", "ring", "tree", "hier":
	default:
		return fmt.Errorf("extrapolator: unknown collective %q", c.Collective)
	}
	if c.RingOrder != nil {
		if len(c.RingOrder) != c.NumGPUs {
			return fmt.Errorf("extrapolator: ring order has %d entries for %d GPUs",
				len(c.RingOrder), c.NumGPUs)
		}
		seen := make([]bool, c.NumGPUs)
		for _, idx := range c.RingOrder {
			if idx < 0 || idx >= c.NumGPUs || seen[idx] {
				return fmt.Errorf("extrapolator: ring order is not a permutation")
			}
			seen[idx] = true
		}
	}
	if c.Timer == nil {
		return fmt.Errorf("extrapolator: nil op timer")
	}
	if c.Topo == nil {
		return fmt.Errorf("extrapolator: nil topology")
	}
	if c.NumGPUs < 1 {
		return fmt.Errorf("extrapolator: %d GPUs", c.NumGPUs)
	}
	if len(c.Topo.GPUs()) < c.NumGPUs {
		return fmt.Errorf("extrapolator: topology has %d GPUs, need %d",
			len(c.Topo.GPUs()), c.NumGPUs)
	}
	return nil
}

// builder holds shared state while emitting one extrapolated graph.
type builder struct {
	cfg  Config
	g    *task.Graph
	gpus []network.NodeID // topology node IDs of the participating GPUs
	host network.NodeID
	tr   *trace.Trace
	fwd  []int // op indices by phase
	bwd  []int
	opt  []int
	// logMap maps logical GPU indices to physical ones (nil = identity).
	// Hybrid parallelism runs the PP builder per data-parallel group with
	// a window into the physical GPU range.
	logMap []int
	// lastBuckets is the DDP gradient-bucket count of the most recently
	// emitted iteration (telemetry metadata).
	lastBuckets int
	// labels interns op.Name+labelSuffix task labels for the current suffix:
	// a trace has hundreds of ops but only a handful of distinct op names, so
	// emitSeq would otherwise rebuild the same few strings once per op.
	labels      map[string]string
	labelSuffix string
}

// label returns the interned name+suffix task label, switching the intern
// table when the suffix changes (suffixes change per iteration/replica/stage,
// i.e. between emitSeq calls, so the table stays hot within each sequence).
func (b *builder) label(name, suffix string) string {
	if b.labels == nil {
		b.labels = make(map[string]string, 16)
	}
	if b.labelSuffix != suffix {
		b.labelSuffix = suffix
		clear(b.labels)
	}
	l, ok := b.labels[name]
	if !ok {
		l = name + suffix
		b.labels[name] = l
	}
	return l
}

// phys resolves a logical GPU index to its physical compute-resource index.
func (b *builder) phys(l int) int {
	if b.logMap == nil {
		return l
	}
	return b.logMap[l]
}

// node resolves a logical GPU index to its topology node.
func (b *builder) node(l int) network.NodeID { return b.gpus[b.phys(l)] }

func newBuilder(cfg Config) (*builder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.defaults()
	b := &builder{
		cfg:  cfg,
		g:    task.NewGraph(),
		gpus: cfg.Topo.GPUs()[:cfg.NumGPUs],
		host: cfg.Topo.Host(),
		tr:   cfg.Trace,
		fwd:  cfg.Trace.OpsInPhase(trace.Forward),
		bwd:  cfg.Trace.OpsInPhase(trace.Backward),
		opt:  cfg.Trace.OpsInPhase(trace.Optimizer),
	}
	if cfg.ForwardOnly {
		b.bwd, b.opt = nil, nil
	}
	return b, nil
}

// ringNodes returns the GPUs in collective ring order. Under a hybrid
// logical window it returns only the window's GPUs.
func (b *builder) ringNodes() []network.NodeID {
	if b.logMap != nil {
		out := make([]network.NodeID, len(b.logMap))
		for k, idx := range b.logMap {
			out[k] = b.gpus[idx]
		}
		return out
	}
	if b.cfg.RingOrder == nil {
		return b.gpus
	}
	out := make([]network.NodeID, len(b.gpus))
	for k, idx := range b.cfg.RingOrder {
		out[k] = b.gpus[idx]
	}
	return out
}

// permuteGates reorders per-GPU gate tasks to match ringNodes positions.
func (b *builder) permuteGates(gates []*task.Task) []*task.Task {
	if b.logMap != nil || b.cfg.RingOrder == nil || gates == nil {
		return gates
	}
	out := make([]*task.Task, len(gates))
	for k, idx := range b.cfg.RingOrder {
		out[k] = gates[idx]
	}
	return out
}

// scaledBytes sums an op's tensor bytes with batch-scaled tensors resized by
// scale (weights and gradients are batch-free and unchanged).
func (b *builder) scaledBytes(op *trace.Op, scale float64) float64 {
	var total float64
	add := func(ids []tensor.ID) {
		for _, id := range ids {
			t := b.tr.Tensors.Get(id)
			if t == nil {
				continue
			}
			bytes := float64(t.Bytes())
			if t.BatchDim >= 0 {
				bytes *= scale
			}
			total += bytes
		}
	}
	add(op.Inputs)
	add(op.Outputs)
	return total
}

// outBytes sums an op's output tensor bytes at the given batch scale.
func (b *builder) outBytes(op *trace.Op, scale float64) float64 {
	var total float64
	for _, id := range op.Outputs {
		t := b.tr.Tensors.Get(id)
		if t == nil {
			continue
		}
		bytes := float64(t.Bytes())
		if t.BatchDim >= 0 {
			bytes *= scale
		}
		total += bytes
	}
	return total
}

// gradBytesOf sums the gradient-category output bytes of an op (the data a
// data-parallel AllReduce must move for it).
func (b *builder) gradBytesOf(op *trace.Op) float64 {
	var total float64
	for _, id := range op.Outputs {
		t := b.tr.Tensors.Get(id)
		if t != nil && t.Category == tensor.Gradient {
			total += float64(t.Bytes())
		}
	}
	return total
}

// opDuration prices an op at batchScale (1 = verbatim replay) and shard
// fraction (1 = unsharded). Optimizer ops never scale with batch.
func (b *builder) opDuration(op *trace.Op, batchScale, shard float64) sim.VTime {
	if op.Phase == trace.Optimizer {
		batchScale = 1
	}
	scaled := batchScale != 1 || shard != 1
	flops := op.FLOPs * batchScale * shard
	bytes := b.scaledBytes(op, batchScale) * shard
	return b.cfg.Timer.OpTime(op.Name, flops, bytes, op.Time, scaled)
}

// inputBytes is the host→GPU staging volume at the given batch scale.
func (b *builder) inputBytes(scale float64) float64 {
	return float64(b.tr.InputBytes()) * scale
}

// emitSeq emits the ops (by index) as a dependency chain on one GPU at the
// given scales, gated on start. Returns the last task (or start if none).
func (b *builder) emitSeq(gpu int, ops []int, batchScale, shard float64,
	start *task.Task, labelSuffix string) *task.Task {
	prev := start
	for _, idx := range ops {
		op := &b.tr.Ops[idx]
		dur := b.opDuration(op, batchScale, shard)
		t := b.g.AddCompute(b.phys(gpu), dur, b.label(op.Name, labelSuffix))
		t.Layer = op.Layer
		b.g.AddDep(prev, t)
		prev = t
	}
	return prev
}

// stageInput emits the host-load of the input batch portion to one GPU.
func (b *builder) stageInput(gpu network.NodeID, scale float64,
	after *task.Task, label string) *task.Task {
	load := b.g.AddHostLoad(b.host, gpu, b.inputBytes(scale), label)
	b.g.AddDep(after, load)
	return load
}

// Result bundles an extrapolated graph with its metadata.
type Result struct {
	Graph *task.Graph
	// IterationEnds marks the completion task of each simulated iteration.
	IterationEnds []*task.Task
	// Meta describes the generated parallelism structure (strategy, replica
	// and stage counts, DDP bucket count, layer→stage map) for telemetry.
	Meta telemetry.ParallelStat
}

// SingleGPU replays the trace on one GPU, optionally rescaled to a new
// global batch size (the paper's single-GPU batch-size what-if, Fig 6).
func SingleGPU(cfg Config) (*Result, error) {
	b, err := newBuilder(cfg)
	if err != nil {
		return nil, err
	}
	cfg = b.cfg
	scale := float64(cfg.GlobalBatch) / float64(b.tr.BatchSize)

	res := &Result{Graph: b.g,
		Meta: telemetry.ParallelStat{Strategy: "single", Replicas: 1}}
	var gate *task.Task = b.g.AddBarrier("start")
	for it := 0; it < cfg.Iterations; it++ {
		suffix := fmt.Sprintf("-it%d", it)
		load := b.stageInput(b.node(0), scale, gate, "stage-input"+suffix)
		last := b.emitSeq(0, b.fwd, scale, 1, load, suffix)
		last = b.emitSeq(0, b.bwd, scale, 1, last, suffix)
		last = b.emitSeq(0, b.opt, scale, 1, last, suffix)
		end := b.g.AddBarrier("iter-done" + suffix)
		b.g.AddDep(last, end)
		res.IterationEnds = append(res.IterationEnds, end)
		gate = end
	}
	return res, nil
}
