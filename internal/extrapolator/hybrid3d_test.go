package extrapolator

import (
	"math"
	"strings"
	"testing"

	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
	"triosim/internal/telemetry"
)

func TestHybrid3DGridValidation(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 8)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 8, Timer: m,
		GlobalBatch: 64}
	if _, err := Hybrid3D(cfg, 2, 2, 3); err == nil {
		t.Fatal("2×2×3 ≠ 8 GPUs accepted")
	}
	if _, err := Hybrid3D(cfg, 3, 2, 1); err == nil {
		t.Fatal("grid product mismatch accepted")
	}
}

func TestHybrid3DStructure(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 8)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 8, Timer: m,
		MicroBatches: 2, GlobalBatch: 64}
	res, err := Hybrid3D(cfg, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Meta.Strategy != "dp+tp+pp" || res.Meta.Replicas != 2 ||
		res.Meta.Stages != 2 || res.Meta.TPRanks != 2 {
		t.Fatalf("meta %+v", res.Meta)
	}
	makespan, tl, _ := runCfg(t, cfg.defaults(), res)
	if makespan <= 0 {
		t.Fatal("zero makespan")
	}
	_ = tl
	// Sharded pipeline activations, TP syncs, and DP allreduce all exist.
	var act, tp3, ar int
	for _, tk := range res.Graph.Tasks {
		switch {
		case strings.HasPrefix(tk.Label, "act-"):
			act++
		case strings.Contains(tk.Label, "-tp-l"):
			tp3++
		case strings.HasPrefix(tk.Label, "3d-allreduce"):
			ar++
		}
	}
	if act == 0 || tp3 == 0 || ar == 0 {
		t.Fatalf("missing structure: %d act, %d tp-sync, %d allreduce tasks",
			act, tp3, ar)
	}
}

// With tp=1 the 3D schedule degenerates to hybrid DP+PP; the makespan must
// match HybridDPPP exactly on the same topology.
func TestHybrid3DReducesToDPPPWhenTP1(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m,
		MicroBatches: 2, GlobalBatch: 64}
	r3d, err := Hybrid3D(cfg, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rpp, err := HybridDPPP(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	t3d, _, _ := runCfg(t, cfg.defaults(), r3d)
	tpp, _, _ := runCfg(t, cfg.defaults(), rpp)
	rel := math.Abs(float64(t3d-tpp)) / float64(tpp)
	if rel > 1e-9 {
		t.Fatalf("3d(dp=2,tp=1,pp=2) %v vs dp+pp %v (rel %g)", t3d, tpp, rel)
	}
}

// FuseCompute preserves the schedule's bandwidth terms: per chunk the fused
// task carries the summed op duration and the fused ring step the summed
// sync bytes. What fusion drops is the per-step route latency of the
// (N−1)-step rings it replaces, so the fused makespan is slightly
// optimistic — bounded here at 2% — and never slower.
func TestHybrid3DFusedMatchesUnfused(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 4)
	base := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m,
		MicroBatches: 1, GlobalBatch: 64}

	plain, err := Hybrid3D(base, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	fusedCfg := base
	fusedCfg.FuseCompute = true
	fused, err := Hybrid3D(fusedCfg, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	tPlain, _, _ := runCfg(t, base.defaults(), plain)
	tFused, _, _ := runCfg(t, fusedCfg.defaults(), fused)
	rel := math.Abs(float64(tFused-tPlain)) / float64(tPlain)
	if rel > 0.02 || tFused > tPlain {
		t.Fatalf("fused %v vs unfused %v (rel %g)", tFused, tPlain, rel)
	}
	if len(fused.Graph.Tasks)*4 > len(plain.Graph.Tasks) {
		t.Fatalf("fusion barely shrank the graph: %d vs %d tasks",
			len(fused.Graph.Tasks), len(plain.Graph.Tasks))
	}
}

// On a tiered cluster whose machine size equals tp, each DP gradient ring
// spans machines rank-aligned — the auto collective must pick the
// hierarchical schedule.
func TestHybrid3DAutoSelectsHierCollective(t *testing.T) {
	tr, m, _ := testSetup(t, "resnet18", 64, 1)
	topo := network.RailFatTree(network.ClusterConfig{
		Machines: 4, GPUsPerMachine: 2,
		NVLinkBandwidth: 300e9, NICBandwidth: 50e9,
		HostBandwidth: 20e9, HostLatency: 5 * sim.USec,
	}, 2, 2)
	log := telemetry.NewCollectiveLog()
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 8, Timer: m,
		GlobalBatch: 64, Collectives: log}
	res, err := Hybrid3D(cfg, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, net := runCfg(t, cfg.defaults(), res); net.TotalBytes <= 0 {
		t.Fatal("no traffic")
	}
	found := false
	for _, tk := range res.Graph.Tasks {
		if tk.Kind == task.Comm &&
			strings.HasPrefix(tk.Label, "3d-allreduce") &&
			strings.Contains(tk.Label, "rail") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no rail-phase tasks: auto collective did not go hierarchical")
	}
	if e := log.Get("3d-allreduce-s0-r0-it0"); e == nil ||
		e.Algo != "hier-allreduce" {
		t.Fatalf("collective log %+v", e)
	}
}
