package extrapolator

import (
	"fmt"

	"triosim/internal/collective"
	"triosim/internal/network"
	"triosim/internal/task"
	"triosim/internal/telemetry"
)

// HybridDPPP extrapolates the trace to hybrid data + pipeline parallelism
// (the HP scheme the paper's Table 1 credits to DistSim/vTrain and lists as
// an extension point for TrioSim): the GPUs form dpGroups pipeline replicas
// of NumGPUs/dpGroups stages each. Every replica runs GPipe over its share
// of the global batch; after the backward drain, corresponding stages of
// all replicas AllReduce their gradient shards, then apply the optimizer.
//
// GPU layout: replica g owns physical GPUs [g·S, (g+1)·S) where
// S = NumGPUs/dpGroups; stage s of replica g runs on GPU g·S+s.
func HybridDPPP(cfg Config, dpGroups int) (*Result, error) {
	b, err := newBuilder(cfg)
	if err != nil {
		return nil, err
	}
	cfg = b.cfg
	if dpGroups < 2 {
		return nil, fmt.Errorf("extrapolator: hybrid needs ≥2 DP groups, got %d",
			dpGroups)
	}
	if cfg.NumGPUs%dpGroups != 0 {
		return nil, fmt.Errorf("extrapolator: %d GPUs not divisible into %d groups",
			cfg.NumGPUs, dpGroups)
	}
	stages := cfg.NumGPUs / dpGroups
	if cfg.GlobalBatch%dpGroups != 0 {
		return nil, fmt.Errorf("extrapolator: batch %d not divisible by %d groups",
			cfg.GlobalBatch, dpGroups)
	}
	groupBatch := cfg.GlobalBatch / dpGroups

	res := &Result{Graph: b.g,
		Meta: telemetry.ParallelStat{Strategy: "dp+pp", Replicas: dpGroups,
			Stages: stages, StageOfLayer: StageAssignment(b.tr, stages)}}
	gate := b.g.AddBarrier("start")
	for it := 0; it < cfg.Iterations; it++ {
		suffix := fmt.Sprintf("-it%d", it)

		// One GPipe schedule per data-parallel replica, windowed onto its
		// physical GPU range.
		phases := make([]*ppPhase, dpGroups)
		for g := 0; g < dpGroups; g++ {
			win := make([]int, stages)
			for s := 0; s < stages; s++ {
				win[s] = g*stages + s
			}
			b.logMap = win
			phases[g] = b.ppForwardBackward(gate,
				fmt.Sprintf("%s-r%d", suffix, g), stages, groupBatch)
		}
		b.logMap = nil

		// Per-stage gradient AllReduce across replicas.
		arDone := make([]*task.Task, stages)
		for s := 0; s < stages; s++ {
			ring := make([]network.NodeID, dpGroups)
			gates := make([]*task.Task, dpGroups)
			for g := 0; g < dpGroups; g++ {
				ring[g] = b.gpus[g*stages+s]
				gates[g] = phases[g].bwdDone[s]
			}
			arDone[s] = collective.RingAllReduce(b.g, ring,
				phases[0].gradBytes[s], gates, collective.Options{
					StepDelay: b.cfg.Effects.CommStepLatency,
					Label:     fmt.Sprintf("hp-allreduce-s%d%s", s, suffix),
					Log:       b.cfg.Collectives,
				})
		}

		// Optimizer on every GPU, gated on its stage's AllReduce.
		end := b.g.AddBarrier("iter-done" + suffix)
		for g := 0; g < dpGroups; g++ {
			for s := 0; s < stages; s++ {
				prev := arDone[s]
				for _, idx := range phases[g].optOps[s] {
					op := &b.tr.Ops[idx]
					t := b.g.AddCompute(g*stages+s, b.opDuration(op, 1, 1),
						op.Name+suffix)
					t.Layer = op.Layer
					b.g.AddDep(prev, t)
					prev = t
				}
				b.g.AddDep(prev, end)
			}
		}
		res.IterationEnds = append(res.IterationEnds, end)
		gate = end
	}
	return res, nil
}

// HybridDPTP extrapolates to hybrid data + tensor parallelism: dpGroups
// tensor-parallel replicas of NumGPUs/dpGroups ranks each. Every replica
// runs TP over its batch share; gradients of the local weight shards are
// then AllReduced across the replicas holding the same shard.
func HybridDPTP(cfg Config, dpGroups int) (*Result, error) {
	b, err := newBuilder(cfg)
	if err != nil {
		return nil, err
	}
	cfg = b.cfg
	if dpGroups < 2 {
		return nil, fmt.Errorf("extrapolator: hybrid needs ≥2 DP groups, got %d",
			dpGroups)
	}
	if cfg.NumGPUs%dpGroups != 0 {
		return nil, fmt.Errorf("extrapolator: %d GPUs not divisible into %d groups",
			cfg.NumGPUs, dpGroups)
	}
	ranks := cfg.NumGPUs / dpGroups
	scale := float64(cfg.GlobalBatch) / float64(dpGroups) /
		float64(b.tr.BatchSize)
	shard := 1.0 / float64(ranks)
	// Each replica rank holds 1/ranks of the weights; the cross-replica
	// AllReduce moves that shard's gradients.
	shardGradBytes := float64(b.tr.GradientBytes()) * shard

	res := &Result{Graph: b.g,
		Meta: telemetry.ParallelStat{Strategy: "dp+tp", Replicas: dpGroups}}
	gate := b.g.AddBarrier("start")
	for it := 0; it < cfg.Iterations; it++ {
		suffix := fmt.Sprintf("-it%d", it)

		// TP forward+backward per replica.
		lastByGPU := make([][]*task.Task, dpGroups)
		for g := 0; g < dpGroups; g++ {
			win := make([]int, ranks)
			for r := 0; r < ranks; r++ {
				win[r] = g*ranks + r
			}
			b.logMap = win
			gsuffix := fmt.Sprintf("%s-r%d", suffix, g)
			prev := make([]*task.Task, ranks)
			for r := 0; r < ranks; r++ {
				prev[r] = b.stageInput(b.node(r), scale, gate,
					fmt.Sprintf("stage-input-g%d%s", r, gsuffix))
			}
			prev = b.tpLayers(b.groupByLayer(b.fwd), scale, shard, prev,
				gsuffix, "fwd")
			prev = b.tpLayers(b.groupByLayer(b.bwd), scale, shard, prev,
				gsuffix, "bwd")
			lastByGPU[g] = prev
		}
		b.logMap = nil

		// Cross-replica gradient AllReduce per TP rank.
		arDone := make([]*task.Task, ranks)
		for r := 0; r < ranks; r++ {
			ring := make([]network.NodeID, dpGroups)
			gates := make([]*task.Task, dpGroups)
			for g := 0; g < dpGroups; g++ {
				ring[g] = b.gpus[g*ranks+r]
				gates[g] = lastByGPU[g][r]
			}
			arDone[r] = collective.RingAllReduce(b.g, ring, shardGradBytes,
				gates, collective.Options{
					StepDelay: b.cfg.Effects.CommStepLatency,
					Label:     fmt.Sprintf("hp-allreduce-r%d%s", r, suffix),
					Log:       b.cfg.Collectives,
				})
		}

		// Sharded optimizer per GPU.
		end := b.g.AddBarrier("iter-done" + suffix)
		for g := 0; g < dpGroups; g++ {
			for r := 0; r < ranks; r++ {
				prev := arDone[r]
				for _, idx := range b.opt {
					op := &b.tr.Ops[idx]
					t := b.g.AddCompute(g*ranks+r,
						b.opDuration(op, scale, shard), op.Name+suffix)
					t.Layer = op.Layer
					b.g.AddDep(prev, t)
					prev = t
				}
				b.g.AddDep(prev, end)
			}
		}
		res.IterationEnds = append(res.IterationEnds, end)
		gate = end
	}
	return res, nil
}
