package extrapolator

import (
	"testing"

	"triosim/internal/sim"
	"triosim/internal/task"
	"triosim/internal/timeline"
)

func TestHybridDPPPStructure(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m,
		MicroBatches: 2, GlobalBatch: 64}
	res, err := HybridDPPP(cfg, 2) // 2 replicas × 2 stages
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	makespan, tl, net := runCfg(t, cfg.defaults(), res)
	if makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// All 4 GPUs work.
	for i := 0; i < 4; i++ {
		if tl.UnionTime(timeline.ByResource("gpu"+string(rune('0'+i)))) <= 0 {
			t.Fatalf("gpu%d idle", i)
		}
	}
	// Both pipeline activations and hybrid AllReduce traffic exist.
	var actSends, hpSends int
	for _, tk := range res.Graph.Tasks {
		if tk.Kind != task.Comm {
			continue
		}
		if len(tk.Label) >= 4 && tk.Label[:4] == "act-" {
			actSends++
		}
		if len(tk.Label) >= 12 && tk.Label[:12] == "hp-allreduce" {
			hpSends++
		}
	}
	if actSends == 0 || hpSends == 0 {
		t.Fatalf("missing traffic: %d act sends, %d hp sends",
			actSends, hpSends)
	}
	_ = net
}

func TestHybridDPPPBeatsDeeperPipeline(t *testing.T) {
	// With a comm-light workload and balanced batch, 2×2 hybrid should beat
	// a 4-deep pipeline at 2 chunks (fewer bubbles).
	tr, m, topo := testSetup(t, "vgg16", 128, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m,
		MicroBatches: 2, GlobalBatch: 128}
	hyb, err := HybridDPPP(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PipelineParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tHyb, _, _ := runCfg(t, cfg.defaults(), hyb)
	tPP, _, _ := runCfg(t, cfg.defaults(), pp)
	if tHyb >= tPP {
		t.Fatalf("hybrid %v not faster than pure PP %v", tHyb, tPP)
	}
}

func TestHybridDPTPStructure(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m,
		GlobalBatch: 64}
	res, err := HybridDPTP(cfg, 2) // 2 replicas × 2 TP ranks
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	makespan, tl, _ := runCfg(t, cfg.defaults(), res)
	if makespan <= 0 {
		t.Fatal("zero makespan")
	}
	for i := 0; i < 4; i++ {
		if tl.UnionTime(timeline.ByResource("gpu"+string(rune('0'+i)))) <= 0 {
			t.Fatalf("gpu%d idle", i)
		}
	}
}

func TestHybridValidation(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 64, 4)
	base := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m,
		GlobalBatch: 64}
	if _, err := HybridDPPP(base, 1); err == nil {
		t.Fatal("1 group accepted")
	}
	if _, err := HybridDPPP(base, 3); err == nil {
		t.Fatal("non-divisible groups accepted")
	}
	odd := base
	odd.GlobalBatch = 63
	if _, err := HybridDPPP(odd, 2); err == nil {
		t.Fatal("non-divisible batch accepted")
	}
	if _, err := HybridDPTP(base, 1); err == nil {
		t.Fatal("DPTP with 1 group accepted")
	}
	if _, err := HybridDPTP(base, 3); err == nil {
		t.Fatal("DPTP non-divisible groups accepted")
	}
}

func TestHybridIterationsChain(t *testing.T) {
	tr, m, topo := testSetup(t, "resnet18", 32, 4)
	c1 := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m,
		GlobalBatch: 32, Iterations: 1}
	c2 := c1
	c2.Iterations = 2
	r1, err := HybridDPPP(c1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := HybridDPPP(c2, 2)
	if err != nil {
		t.Fatal(err)
	}
	t1, _, _ := runCfg(t, c1.defaults(), r1)
	t2, _, _ := runCfg(t, c2.defaults(), r2)
	ratio := float64(t2) / float64(t1)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("2-iteration ratio %.4f", ratio)
	}
}

func TestHybridGradTrafficMatchesShards(t *testing.T) {
	// DPTP: each rank AllReduces 1/ranks of the gradients across 2 groups;
	// total hp traffic = ranks × 2(groups−1) × shardBytes/groups... verify
	// the per-collective volume is the shard size.
	tr, m, topo := testSetup(t, "resnet18", 32, 4)
	cfg := Config{Trace: tr, Topo: topo, NumGPUs: 4, Timer: m,
		GlobalBatch: 32}
	res, err := HybridDPTP(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	shard := float64(tr.GradientBytes()) / 2 // 2 TP ranks per replica
	var hpBytes float64
	for _, tk := range res.Graph.Tasks {
		if tk.Kind == task.Comm && len(tk.Label) >= 12 &&
			tk.Label[:12] == "hp-allreduce" {
			hpBytes += tk.Bytes
		}
	}
	// 2 ranks × ring-of-2 AllReduce: 2(N−1)·B with N=2 → 2·shard each.
	want := 2 * 2 * shard
	rel := hpBytes/want - 1
	if rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("hp traffic %g, want %g", hpBytes, want)
	}
	_ = sim.VTime(0)
}
