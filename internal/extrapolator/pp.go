package extrapolator

import (
	"fmt"

	"triosim/internal/task"
	"triosim/internal/telemetry"
	"triosim/internal/trace"
)

// partitionStages solves the linear partition problem: split the layer
// weight sequence into `stages` contiguous groups minimizing the maximum
// group sum (the simulator's automatic layer-to-GPU balancing, §4.3/§8.2).
// Returns the stage index of each layer.
func partitionStages(weights []float64, stages int) []int {
	l := len(weights)
	if stages < 1 {
		stages = 1
	}
	if stages > l {
		stages = l
	}
	// prefix[i] = sum of weights[:i].
	prefix := make([]float64, l+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	const inf = 1e308
	// cost[i][s] = minimal max-group-sum partitioning weights[:i] into s
	// groups.
	cost := make([][]float64, l+1)
	cut := make([][]int, l+1)
	for i := range cost {
		cost[i] = make([]float64, stages+1)
		cut[i] = make([]int, stages+1)
		for s := range cost[i] {
			cost[i][s] = inf
		}
	}
	cost[0][0] = 0
	for i := 1; i <= l; i++ {
		for s := 1; s <= stages && s <= i; s++ {
			for j := s - 1; j < i; j++ {
				group := prefix[i] - prefix[j]
				c := cost[j][s-1]
				if group > c {
					c = group
				}
				if c < cost[i][s] {
					cost[i][s] = c
					cut[i][s] = j
				}
			}
		}
	}
	// Walk back the cuts.
	out := make([]int, l)
	i, s := l, stages
	for s > 0 {
		j := cut[i][s]
		for k := j; k < i; k++ {
			out[k] = s - 1
		}
		i, s = j, s-1
	}
	return out
}

// PipelineParallel extrapolates the trace to GPipe pipeline parallelism:
// layers are auto-partitioned into NumGPUs balanced stages, the mini-batch
// is divided into MicroBatches equal micro-batches, forward micro-batches
// flow down the pipeline, and the backward pass runs after the stage's
// forward flush, in reverse micro-batch order (paper §4.3, Fig 4).
func PipelineParallel(cfg Config) (*Result, error) {
	b, err := newBuilder(cfg)
	if err != nil {
		return nil, err
	}
	cfg = b.cfg
	res := &Result{Graph: b.g,
		Meta: telemetry.ParallelStat{Strategy: "pp", Stages: cfg.NumGPUs,
			StageOfLayer: StageAssignment(b.tr, cfg.NumGPUs)}}
	gate := b.g.AddBarrier("start")
	for it := 0; it < cfg.Iterations; it++ {
		suffix := fmt.Sprintf("-it%d", it)
		end := b.ppIteration(gate, suffix)
		res.IterationEnds = append(res.IterationEnds, end)
		gate = end
	}
	return res, nil
}

// ppPhase is the reusable forward+backward pipeline schedule for one
// pipeline group: per-stage drained backward tasks, the optimizer op
// indices per stage, and the gradient bytes each stage owns (what a hybrid
// data-parallel AllReduce must synchronize per stage).
type ppPhase struct {
	bwdDone   []*task.Task
	optOps    [][]int
	gradBytes []float64
}

func (b *builder) ppIteration(gate *task.Task, suffix string) *task.Task {
	n := b.cfg.NumGPUs
	ph := b.ppForwardBackward(gate, suffix, n, b.cfg.GlobalBatch)

	// Optimizer per stage after its full backward drain.
	end := b.g.AddBarrier("iter-done" + suffix)
	for s := 0; s < n; s++ {
		prev := ph.bwdDone[s]
		if prev == nil {
			prev = gate
		}
		for _, idx := range ph.optOps[s] {
			op := &b.tr.Ops[idx]
			t := b.g.AddCompute(b.phys(s), b.opDuration(op, 1, 1),
				op.Name+suffix)
			t.Layer = op.Layer
			b.g.AddDep(prev, t)
			prev = t
		}
		b.g.AddDep(prev, end)
	}
	return end
}

// ppForwardBackward emits the GPipe forward and backward schedules over
// `stages` logical GPUs processing groupBatch samples, and returns the
// per-stage drain points without emitting the optimizer (callers decide
// whether a hybrid gradient AllReduce comes first).
func (b *builder) ppForwardBackward(gate *task.Task, suffix string,
	stages, groupBatch int) *ppPhase {

	n := stages
	m := b.cfg.MicroBatches
	nLayers := b.tr.NumLayers()
	microScale := float64(groupBatch) / float64(m) /
		float64(b.tr.BatchSize)

	// Balance stages on traced forward time per layer.
	layerTime := make([]float64, nLayers)
	for _, idx := range b.fwd {
		op := &b.tr.Ops[idx]
		layerTime[op.Layer] += float64(op.Time)
	}
	stageOf := partitionStages(layerTime, n)

	// Ops per stage, in phase order.
	fwdOps := make([][]int, n)
	bwdOps := make([][]int, n)
	optOps := make([][]int, n)
	for _, idx := range b.fwd {
		s := stageOf[b.tr.Ops[idx].Layer]
		fwdOps[s] = append(fwdOps[s], idx)
	}
	for _, idx := range b.bwd {
		s := stageOf[b.tr.Ops[idx].Layer]
		bwdOps[s] = append(bwdOps[s], idx)
	}
	for _, idx := range b.opt {
		s := stageOf[b.tr.Ops[idx].Layer]
		optOps[s] = append(optOps[s], idx)
	}
	// Boundary activation bytes leaving each stage (scaled per micro).
	boundary := make([]float64, n)
	for s := 0; s < n; s++ {
		if len(fwdOps[s]) > 0 {
			last := &b.tr.Ops[fwdOps[s][len(fwdOps[s])-1]]
			boundary[s] = b.outBytes(last, microScale)
		}
	}

	// emitChunk runs one stage's ops for one micro-batch, preceded by the
	// hardware CPU-scheduling delay when configured.
	cpu := b.cfg.Effects.CPUSchedPerMicroBatch
	prevCPU := make([]*task.Task, n) // serializes per-stage host dispatch
	emitChunk := func(stage int, ops []int, deps []*task.Task,
		label string) (first, last *task.Task) {

		entry := b.g.AddBarrier(label + "-entry")
		for _, d := range deps {
			b.g.AddDep(d, entry)
		}
		start := entry
		if cpu.After(0) {
			d := b.g.AddDelay(cpu, label+"-cpusched")
			b.g.AddDep(entry, d)
			if prevCPU[stage] != nil {
				b.g.AddDep(prevCPU[stage], d)
			}
			prevCPU[stage] = d
			start = d
		}
		prev := start
		for _, idx := range ops {
			op := &b.tr.Ops[idx]
			t := b.g.AddCompute(b.phys(stage),
				b.opDuration(op, microScale, 1), op.Name+suffix)
			t.Layer = op.Layer
			t.MicroBatch = -1
			b.g.AddDep(prev, t)
			prev = t
		}
		return entry, prev
	}

	// Forward pipeline.
	fwdLast := make([][]*task.Task, n) // [stage][micro] last fwd task
	arrive := make([][]*task.Task, n)  // [stage][micro] activation arrival
	for s := 0; s < n; s++ {
		fwdLast[s] = make([]*task.Task, m)
		arrive[s] = make([]*task.Task, m)
	}
	for mb := 0; mb < m; mb++ {
		load := b.stageInput(b.node(0), microScale, gate,
			fmt.Sprintf("stage-input-mb%d%s", mb, suffix))
		arrive[0][mb] = load
	}
	for s := 0; s < n; s++ {
		for mb := 0; mb < m; mb++ {
			deps := []*task.Task{arrive[s][mb]}
			if mb > 0 {
				deps = append(deps, fwdLast[s][mb-1])
			}
			_, last := emitChunk(s, fwdOps[s], deps,
				fmt.Sprintf("fwd-s%d-mb%d%s", s, mb, suffix))
			fwdLast[s][mb] = last
			if s+1 < n {
				send := b.g.AddComm(b.node(s), b.node(s+1), boundary[s],
					fmt.Sprintf("act-s%d-mb%d%s", s, mb, suffix))
				send.MicroBatch = mb
				b.g.AddDep(last, send)
				arrive[s+1][mb] = send
			}
		}
	}

	// Inference: the pipeline drains after the last forward micro-batch; no
	// backward pass or gradient traffic exists.
	if b.cfg.ForwardOnly {
		ph := &ppPhase{
			bwdDone:   make([]*task.Task, n),
			optOps:    optOps,
			gradBytes: make([]float64, n),
		}
		for s := 0; s < n; s++ {
			ph.bwdDone[s] = fwdLast[s][m-1]
		}
		return ph
	}

	// Backward: GPipe flush — a stage starts backward only after its last
	// forward micro-batch; micro-batches drain in reverse order.
	bwdLast := make([][]*task.Task, n)
	gradArrive := make([][]*task.Task, n)
	for s := 0; s < n; s++ {
		bwdLast[s] = make([]*task.Task, m)
		gradArrive[s] = make([]*task.Task, m)
	}
	for s := n - 1; s >= 0; s-- {
		prevMicro := (*task.Task)(nil)
		for k := 0; k < m; k++ {
			mb := m - 1 - k // reverse order
			deps := []*task.Task{fwdLast[s][m-1]}
			if gradArrive[s][mb] != nil {
				deps = append(deps, gradArrive[s][mb])
			}
			if prevMicro != nil {
				deps = append(deps, prevMicro)
			}
			_, last := emitChunk(s, bwdOps[s], deps,
				fmt.Sprintf("bwd-s%d-mb%d%s", s, mb, suffix))
			bwdLast[s][mb] = last
			prevMicro = last
			if s > 0 {
				send := b.g.AddComm(b.node(s), b.node(s-1), boundary[s-1],
					fmt.Sprintf("grad-s%d-mb%d%s", s, mb, suffix))
				send.MicroBatch = mb
				b.g.AddDep(last, send)
				gradArrive[s-1][mb] = send
			}
		}
	}

	// Per-stage drain points (micro-batch 0 drains last) and the gradient
	// bytes each stage owns.
	ph := &ppPhase{
		bwdDone:   make([]*task.Task, n),
		optOps:    optOps,
		gradBytes: make([]float64, n),
	}
	for s := 0; s < n; s++ {
		ph.bwdDone[s] = bwdLast[s][0]
		for _, idx := range bwdOps[s] {
			ph.gradBytes[s] += b.gradBytesOf(&b.tr.Ops[idx])
		}
	}
	return ph
}

// StageAssignment exposes the balanced layer→stage mapping for diagnostics
// and tests.
func StageAssignment(tr *trace.Trace, stages int) []int {
	layerTime := make([]float64, tr.NumLayers())
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Phase == trace.Forward {
			layerTime[op.Layer] += float64(op.Time)
		}
	}
	return partitionStages(layerTime, stages)
}
