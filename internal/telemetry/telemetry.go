// Package telemetry is TrioSim's unified metrics layer: a deterministic,
// virtual-time-aware registry of counters, gauges, and fixed-bucket
// histograms, plus the collector that threads instrumentation through the
// simulator (per-GPU compute/comm/idle accounting, per-link utilization,
// collective bandwidths, and engine self-profiling).
//
// The package obeys the serial-engine determinism contract (triosimvet):
// no locks, no goroutines, no wall-clock reads. All mutation happens on the
// engine goroutine via hooks and observers; every export path iterates in
// sorted key order so two identical runs render byte-identical output. The
// thread-safe live surface (HTTP /metrics) lives in internal/monitor, which
// snapshots a rendered registry under its own lock at the boundary.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// MetricKind classifies a metric family.
type MetricKind string

// Metric kinds.
const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// Counter is a monotonically increasing value (bytes moved, events seen).
type Counter struct {
	value float64
}

// Add increases the counter. Negative deltas are ignored: counters only go
// up, and a negative add is always an instrumentation bug.
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.value += v
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.value++ }

// Value returns the accumulated total.
func (c *Counter) Value() float64 { return c.value }

// Gauge is a point-in-time value (utilization ratio, queue depth).
type Gauge struct {
	value float64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.value = v }

// SetMax stores v only when it exceeds the current value (high-water marks).
func (g *Gauge) SetMax(v float64) {
	if v > g.value {
		g.value = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.value }

// Histogram is a fixed-bucket cumulative histogram. Bounds are upper bucket
// edges in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1, last is +Inf
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Bounds returns the configured upper bucket edges.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Counts returns per-bucket observation counts (last entry is +Inf).
func (h *Histogram) Counts() []uint64 { return h.counts }

// DurationBuckets are the default histogram edges for virtual-time
// durations, log-spaced from 1 µs to 10 s.
var DurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// metricKey identifies one series within a family.
type metricKey struct {
	name  string
	label string
}

// family holds a metric family's shared metadata.
type family struct {
	name     string
	labelKey string // "" for unlabeled metrics
	kind     MetricKind
	help     string
}

// Registry holds every metric of one simulation run. It is not safe for
// concurrent use: all writes happen on the engine goroutine, and readers
// outside it must go through a boundary snapshot (see internal/monitor).
type Registry struct {
	families  map[string]*family
	order     []string // family registration order (re-sorted at export)
	counters  map[metricKey]*Counter
	gauges    map[metricKey]*Gauge
	hists     map[metricKey]*Histogram
	histainfo map[string][]float64 // family -> bounds
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families:  map[string]*family{},
		counters:  map[metricKey]*Counter{},
		gauges:    map[metricKey]*Gauge{},
		hists:     map[metricKey]*Histogram{},
		histainfo: map[string][]float64{},
	}
}

func (r *Registry) familyOf(name, labelKey, help string, kind MetricKind) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, labelKey: labelKey, kind: kind, help: help}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// Counter returns (creating on first use) the counter series name{labelKey=
// labelValue}. Pass empty label strings for an unlabeled metric.
func (r *Registry) Counter(name, labelKey, labelValue, help string) *Counter {
	r.familyOf(name, labelKey, help, KindCounter)
	k := metricKey{name, labelValue}
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge series.
func (r *Registry) Gauge(name, labelKey, labelValue, help string) *Gauge {
	r.familyOf(name, labelKey, help, KindGauge)
	k := metricKey{name, labelValue}
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram series with the
// given upper bucket bounds. Bounds are fixed at first registration of the
// family; later calls reuse them.
func (r *Registry) Histogram(name, labelKey, labelValue, help string,
	bounds []float64) *Histogram {
	r.familyOf(name, labelKey, help, KindHistogram)
	if _, ok := r.histainfo[name]; !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		r.histainfo[name] = b
	}
	k := metricKey{name, labelValue}
	h := r.hists[k]
	if h == nil {
		b := r.histainfo[name]
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
		r.hists[k] = h
	}
	return h
}

// BucketCount is one histogram bucket of a MetricPoint.
type BucketCount struct {
	UpperBound float64 `json:"le"` // +Inf encoded as 0-length omission; see Export
	Count      uint64  `json:"count"`
}

// MetricPoint is one exported metric series, the registry's generic dump
// format (embedded in RunReport and rendered to Prometheus text).
type MetricPoint struct {
	Name       string        `json:"name"`
	Kind       MetricKind    `json:"kind"`
	LabelKey   string        `json:"label_key,omitempty"`
	LabelValue string        `json:"label_value,omitempty"`
	Value      float64       `json:"value"`
	Sum        float64       `json:"sum,omitempty"`
	Count      uint64        `json:"count,omitempty"`
	Buckets    []BucketCount `json:"buckets,omitempty"`
}

// Export dumps every series sorted by (family name, label value) — a
// deterministic total order regardless of registration or map order.
// labelValues collects the sorted label values of one family's series.
func labelValues[V any](m map[metricKey]V, name string) []string {
	var out []string
	for k := range m {
		if k.name == name {
			out = append(out, k.label)
		}
	}
	sort.Strings(out)
	return out
}

func (r *Registry) Export() []MetricPoint {
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)

	var out []MetricPoint
	for _, name := range names {
		f := r.families[name]
		var labels []string
		switch f.kind {
		case KindCounter:
			labels = labelValues(r.counters, name)
		case KindGauge:
			labels = labelValues(r.gauges, name)
		case KindHistogram:
			labels = labelValues(r.hists, name)
		}
		for _, lv := range labels {
			k := metricKey{name, lv}
			p := MetricPoint{
				Name: name, Kind: f.kind,
				LabelKey: f.labelKey, LabelValue: lv,
			}
			switch f.kind {
			case KindCounter:
				p.Value = r.counters[k].value
			case KindGauge:
				p.Value = r.gauges[k].value
			case KindHistogram:
				h := r.hists[k]
				p.Sum, p.Count = h.sum, h.count
				cum := uint64(0)
				for i, b := range h.bounds {
					cum += h.counts[i]
					p.Buckets = append(p.Buckets,
						BucketCount{UpperBound: b, Count: cum})
				}
			}
			out = append(out, p)
		}
	}
	return out
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers followed by one sample per
// series, histograms expanded into _bucket/_sum/_count.
func (r *Registry) WriteProm(w io.Writer) error {
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)

	points := r.Export()
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		for _, p := range points {
			if p.Name != name {
				continue
			}
			switch f.kind {
			case KindCounter, KindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", name,
					promLabels(f.labelKey, p.LabelValue), promFloat(p.Value))
			case KindHistogram:
				cum := uint64(0)
				h := r.hists[metricKey{name, p.LabelValue}]
				for i, bound := range h.bounds {
					cum += h.counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name,
						promLabelsLE(f.labelKey, p.LabelValue, promFloat(bound)),
						cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name,
					promLabelsLE(f.labelKey, p.LabelValue, "+Inf"), h.count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", name,
					promLabels(f.labelKey, p.LabelValue), promFloat(h.sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", name,
					promLabels(f.labelKey, p.LabelValue), h.count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func promLabels(key, value string) string {
	if key == "" || value == "" {
		return ""
	}
	return fmt.Sprintf(`{%s=%q}`, key, value)
}

func promLabelsLE(key, value, le string) string {
	if key == "" || value == "" {
		return fmt.Sprintf(`{le=%q}`, le)
	}
	return fmt.Sprintf(`{%s=%q,le=%q}`, key, value, le)
}

// promFloat renders a float the way Prometheus clients do: integral values
// without a decimal point, everything else in minimal form.
func promFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
