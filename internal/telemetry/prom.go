package telemetry

import (
	"bytes"
	"fmt"
	"strings"
)

// PromText accumulates one Prometheus text-format (0.0.4) exposition from
// several independent writers. The Prometheus format forbids registering a
// metric family twice in one response; with more than one component writing
// hand-rolled gauges into the same /metrics handler — the monitor's progress
// gauges, the triosimd server's queue gauges, and both of them wanting the
// shared trace-cache stats — nothing structurally prevented a duplicated
// family. PromText is that missing structure: every family registers through
// it, the first registration wins, and later attempts (same name, whichever
// component makes them) are dropped whole rather than corrupting the
// exposition.
//
// PromText is a per-response builder, not a long-lived registry: construct
// one per HTTP request, write into it, then emit Bytes. It is not safe for
// concurrent use.
type PromText struct {
	buf  bytes.Buffer
	seen map[string]bool
}

// NewPromText returns an empty exposition builder.
func NewPromText() *PromText {
	return &PromText{seen: map[string]bool{}}
}

// Header registers a metric family and writes its # HELP / # TYPE preamble.
// It returns false — and writes nothing — when the family name was already
// registered in this exposition; the caller must then skip its samples too.
func (p *PromText) Header(name, kind, help string) bool {
	if p.seen[name] {
		return false
	}
	p.seen[name] = true
	if help != "" {
		fmt.Fprintf(&p.buf, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(&p.buf, "# TYPE %s %s\n", name, kind)
	return true
}

// Samplef appends one raw sample line. Only call it after a true Header for
// the family the sample belongs to.
func (p *PromText) Samplef(format string, args ...any) {
	fmt.Fprintf(&p.buf, format, args...)
	p.buf.WriteByte('\n')
}

// Gauge registers and writes one unlabeled gauge sample.
func (p *PromText) Gauge(name, help string, v float64) {
	if p.Header(name, "gauge", help) {
		p.Samplef("%s %s", name, promFloat(v))
	}
}

// Counter registers and writes one unlabeled counter sample.
func (p *PromText) Counter(name, help string, v float64) {
	if p.Header(name, "counter", help) {
		p.Samplef("%s %s", name, promFloat(v))
	}
}

// Histogram registers and writes one unlabeled cumulative histogram.
// bounds are upper bucket edges; counts has len(bounds)+1 entries with the
// final one counting observations above every bound (+Inf).
func (p *PromText) Histogram(name, help string, bounds []float64,
	counts []uint64, sum float64, count uint64) {

	if !p.Header(name, "histogram", help) {
		return
	}
	cum := uint64(0)
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		p.Samplef("%s_bucket{le=%q} %d", name, promFloat(b), cum)
	}
	p.Samplef("%s_bucket{le=\"+Inf\"} %d", name, count)
	p.Samplef("%s_sum %s", name, promFloat(sum))
	p.Samplef("%s_count %d", name, count)
}

// Raw appends a pre-rendered exposition block (e.g. a cached
// Registry.WriteProm snapshot), registering every family it declares and
// skipping any whose name was already registered. Lines belonging to a
// skipped family (its samples and HELP line) are dropped with it.
func (p *PromText) Raw(block []byte) {
	// The registry renders HELP (optional) then TYPE then samples per
	// family. Walk lines, tracking whether the current family is kept.
	keep := true
	var pendingHelp string
	for _, line := range strings.Split(string(block), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			// Buffer until the TYPE line resolves the family's fate.
			pendingHelp = line
		case strings.HasPrefix(line, "# TYPE "):
			name := familyName(line)
			keep = name != "" && !p.seen[name]
			if keep {
				p.seen[name] = true
				if pendingHelp != "" {
					p.buf.WriteString(pendingHelp)
					p.buf.WriteByte('\n')
				}
				p.buf.WriteString(line)
				p.buf.WriteByte('\n')
			}
			pendingHelp = ""
		case line == "":
			// Preserve structure only for kept content; trailing newline is
			// added by callers' samples already.
		default:
			if keep {
				p.buf.WriteString(line)
				p.buf.WriteByte('\n')
			}
		}
	}
}

// familyName extracts the metric name from a "# TYPE name kind" line.
func familyName(typeLine string) string {
	fields := strings.Fields(typeLine)
	if len(fields) < 3 {
		return ""
	}
	return fields[2]
}

// Bytes returns the accumulated exposition.
func (p *PromText) Bytes() []byte { return p.buf.Bytes() }
