package telemetry

import (
	"testing"

	"triosim/internal/network"
	"triosim/internal/sim"
)

// Per-tier aggregation: flows routed over a tiered cluster must fold into
// TierStat rows (sorted, capacity-normalized) and survive Validate.
func TestCollectorTierAggregation(t *testing.T) {
	topo := network.RailFatTree(network.ClusterConfig{
		Machines: 2, GPUsPerMachine: 2,
		NVLinkBandwidth: 300e9, NICBandwidth: 50e9,
		HostBandwidth: 20e9,
	}, 2, 2)
	c := NewCollector(NewRegistry(), topo, nil)
	gpus := topo.GPUs()

	intra, err := topo.Route(gpus[0], gpus[1]) // same machine: nvlink only
	if err != nil {
		t.Fatal(err)
	}
	inter, err := topo.Route(gpus[0], gpus[2]) // cross machine: nic (+fabric)
	if err != nil {
		t.Fatal(err)
	}
	c.FlowFinished(intra, 1e9, 0, sim.Sec)
	c.FlowFinished(inter, 2e9, 0, sim.Sec)

	rep := c.Finalize(RunInfo{NumGPUs: len(gpus), TotalSec: 1})
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	byTier := map[string]TierStat{}
	for i, ts := range rep.Tiers {
		byTier[ts.Tier] = ts
		if i > 0 && rep.Tiers[i-1].Tier >= ts.Tier {
			t.Fatalf("tiers not sorted: %v", rep.Tiers)
		}
	}
	nv, ok := byTier[network.TierNVLink]
	if !ok || nv.Bytes != 1e9*float64(len(intra)) {
		t.Fatalf("nvlink tier = %+v (route %d hops)", nv, len(intra))
	}
	nic, ok := byTier[network.TierNIC]
	if !ok || nic.Bytes <= 0 {
		t.Fatalf("nic tier = %+v", nic)
	}
	// Utilization normalizes by the tier's full directed capacity over the
	// makespan, not just the links that carried traffic.
	var nvCap float64
	var nvLinks int
	for i := range topo.Links {
		if topo.Links[i].Tier == network.TierNVLink {
			nvCap += 2 * topo.Links[i].Bandwidth
			nvLinks += 2
		}
	}
	if nv.Links != nvLinks {
		t.Fatalf("nvlink directed links = %d, want %d", nv.Links, nvLinks)
	}
	want := nv.Bytes / nvCap
	if diff := nv.Utilization - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("nvlink utilization = %g, want %g", nv.Utilization, want)
	}

	// Untiered topologies must produce no tier section at all.
	flat := network.Ring(network.Config{
		NumGPUs: 4, LinkBandwidth: 100e9, HostBandwidth: 20e9,
	})
	fc := NewCollector(NewRegistry(), flat, nil)
	route, err := flat.Route(flat.GPUs()[0], flat.GPUs()[1])
	if err != nil {
		t.Fatal(err)
	}
	fc.FlowFinished(route, 1e9, 0, sim.Sec)
	if rep := fc.Finalize(RunInfo{NumGPUs: 4, TotalSec: 1}); len(rep.Tiers) != 0 {
		t.Fatalf("flat topology produced tiers: %+v", rep.Tiers)
	}
}
