package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"triosim/internal/network"
	"triosim/internal/sim"
	"triosim/internal/task"
)

// CollectiveEntry is the generation-time metadata of one collective instance
// (recorded by internal/collective while the task graph is built).
type CollectiveEntry struct {
	Label string
	// Algo is the algorithm family, e.g. "ring-allreduce" or "tree-allreduce".
	Algo  string
	Ranks int
	// PayloadBytes is the logical buffer size the collective synchronizes.
	PayloadBytes float64
	// BusFactor converts algorithm bandwidth to bus bandwidth (NCCL's
	// convention): 2(N−1)/N for allreduce, (N−1)/N for RS/AG, 1 for
	// root-rooted patterns.
	BusFactor float64
}

// CollectiveLog accumulates CollectiveEntry records. A nil log is a valid
// no-op sink, so graph generators can record unconditionally.
type CollectiveLog struct {
	entries map[string]*CollectiveEntry
}

// NewCollectiveLog returns an empty log.
func NewCollectiveLog() *CollectiveLog {
	return &CollectiveLog{entries: map[string]*CollectiveEntry{}}
}

// Record stores one collective's metadata keyed by its task-label prefix.
func (l *CollectiveLog) Record(label, algo string, ranks int,
	payloadBytes, busFactor float64) {
	if l == nil {
		return
	}
	l.entries[label] = &CollectiveEntry{
		Label: label, Algo: algo, Ranks: ranks,
		PayloadBytes: payloadBytes, BusFactor: busFactor,
	}
}

// Get returns the entry for label, or nil.
func (l *CollectiveLog) Get(label string) *CollectiveEntry {
	if l == nil {
		return nil
	}
	return l.entries[label]
}

// span is a half-open [s, e) interval in seconds; the collector's interval
// algebra works on plain float64 so virtual-time comparison rules stay inside
// internal/sim.
type span struct{ s, e float64 }

// unionSpans merges overlapping/adjacent spans into a sorted disjoint set.
func unionSpans(in []span) []span {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool {
		if in[i].s != in[j].s {
			return in[i].s < in[j].s
		}
		return in[i].e < in[j].e
	})
	out := []span{in[0]}
	for _, sp := range in[1:] {
		last := &out[len(out)-1]
		if sp.s <= last.e {
			if sp.e > last.e {
				last.e = sp.e
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// spansLen sums a disjoint span set's total length.
func spansLen(in []span) float64 {
	var total float64
	for _, sp := range in {
		total += sp.e - sp.s
	}
	return total
}

// subtractSpans returns a minus b; both must be sorted disjoint sets.
func subtractSpans(a, b []span) []span {
	var out []span
	j := 0
	for _, sp := range a {
		cur := sp
		for j < len(b) && b[j].e <= cur.s {
			j++
		}
		k := j
		for k < len(b) && b[k].s < cur.e {
			if b[k].s > cur.s {
				out = append(out, span{cur.s, b[k].s})
			}
			if b[k].e > cur.s {
				cur.s = b[k].e
			}
			if cur.s >= cur.e {
				break
			}
			k++
		}
		if cur.s < cur.e {
			out = append(out, cur)
		}
	}
	return out
}

// collAgg accumulates the runtime side of one collective instance.
type collAgg struct {
	moved      float64
	start, end float64
	started    bool
	minLinkBw  float64
}

// Collector is the run-wide telemetry sink: it observes completed tasks
// (task.Observer), finished flows and rate recomputations
// (network.FlowObserver), and engine dispatches (EngineHook), feeding a
// Registry and accumulating the state Finalize turns into a RunReport.
//
// All methods are invoked on the engine goroutine; the Collector never
// schedules events, so the dispatched event schedule — and therefore the
// replay digest — is identical with or without it.
type Collector struct {
	reg  *Registry
	topo *network.Topology
	log  *CollectiveLog

	gpuIndex map[network.NodeID]int
	nGPUs    int

	computeIvl   map[int][]span
	commIvl      map[int][]span
	hostIvl      map[int][]span
	computeTasks map[int]int

	linkBytes map[string]float64
	linkFlows map[string]int
	linkBw    map[string]float64

	tierBytes map[string]float64
	tierFlows map[string]int

	coll map[string]*collAgg

	kinds      map[string]uint64
	queuePeak  int
	recomputes int
	lastVTime  float64
}

// NewCollector builds a collector over topo feeding reg. log may be nil when
// the workload has no collectives (or they were generated without a log).
func NewCollector(reg *Registry, topo *network.Topology,
	log *CollectiveLog) *Collector {
	c := &Collector{
		reg:          reg,
		topo:         topo,
		log:          log,
		gpuIndex:     map[network.NodeID]int{},
		computeIvl:   map[int][]span{},
		commIvl:      map[int][]span{},
		hostIvl:      map[int][]span{},
		computeTasks: map[int]int{},
		linkBytes:    map[string]float64{},
		linkFlows:    map[string]int{},
		linkBw:       map[string]float64{},
		tierBytes:    map[string]float64{},
		tierFlows:    map[string]int{},
		coll:         map[string]*collAgg{},
		kinds:        map[string]uint64{},
	}
	for i, id := range topo.GPUs() {
		c.gpuIndex[id] = i
	}
	return c
}

// Registry returns the backing metrics registry.
func (c *Collector) Registry() *Registry { return c.reg }

var _ task.Observer = (*Collector)(nil)
var _ network.FlowObserver = (*Collector)(nil)

// TaskDone implements task.Observer.
func (c *Collector) TaskDone(t *task.Task, start, end sim.VTime) {
	s, e := start.Seconds(), end.Seconds()
	switch t.Kind {
	case task.Compute:
		g := t.GPU
		c.computeIvl[g] = append(c.computeIvl[g], span{s, e})
		c.computeTasks[g]++
		c.reg.Counter("triosim_gpu_compute_seconds_total", "gpu",
			fmt.Sprintf("gpu%d", g),
			"Serial compute-stream occupancy per GPU.").Add(e - s)
		c.reg.Histogram("triosim_op_duration_seconds", "category",
			OpCategory(t.Label),
			"Per-operator compute durations by category.",
			DurationBuckets).Observe(e - s)
	case task.Comm:
		for _, nid := range []network.NodeID{t.Src, t.Dst} {
			if g, ok := c.gpuIndex[nid]; ok {
				c.commIvl[g] = append(c.commIvl[g], span{s, e})
			}
			if t.Src == t.Dst {
				break // local transfer: attribute once
			}
		}
		if t.Collective != "" {
			c.observeCollective(t, s, e)
		}
	case task.HostLoad:
		if g, ok := c.gpuIndex[t.Dst]; ok {
			c.hostIvl[g] = append(c.hostIvl[g], span{s, e})
		}
	}
}

// observeCollective folds one collective step's transfer into its instance
// aggregate and the per-algorithm byte counter.
func (c *Collector) observeCollective(t *task.Task, s, e float64) {
	a := c.coll[t.Collective]
	if a == nil {
		a = &collAgg{minLinkBw: math.Inf(1)}
		c.coll[t.Collective] = a
	}
	a.moved += t.Bytes
	if !a.started || s < a.start {
		a.start = s
	}
	if e > a.end {
		a.end = e
	}
	a.started = true
	if route, err := c.topo.Route(t.Src, t.Dst); err == nil {
		for _, dl := range route {
			if bw := c.topo.Links[dl.Link].Bandwidth; bw < a.minLinkBw {
				a.minLinkBw = bw
			}
		}
	}
	algo := "unknown"
	if entry := c.log.Get(t.Collective); entry != nil {
		algo = entry.Algo
	}
	c.reg.Counter("triosim_collective_bytes_total", "algo", algo,
		"Bytes moved by collective communication, per algorithm.").Add(t.Bytes)
}

// linkName renders one link direction as "src->dst" using topology node
// names.
func (c *Collector) linkName(dl network.DirLink) string {
	lk := c.topo.Links[dl.Link]
	a := c.topo.Nodes[lk.A].Name
	b := c.topo.Nodes[lk.B].Name
	if dl.Forward {
		return a + "->" + b
	}
	return b + "->" + a
}

// FlowFinished implements network.FlowObserver.
func (c *Collector) FlowFinished(route []network.DirLink, bytes float64,
	start, end sim.VTime) {
	s, e := start.Seconds(), end.Seconds()
	for _, dl := range route {
		name := c.linkName(dl)
		c.linkBytes[name] += bytes
		c.linkFlows[name]++
		lk := &c.topo.Links[dl.Link]
		bw := lk.Bandwidth
		c.linkBw[name] = bw
		if lk.Tier != "" {
			c.tierBytes[lk.Tier] += bytes
			c.tierFlows[lk.Tier]++
		}
		c.reg.Counter("triosim_link_bytes_total", "link", name,
			"Bytes carried per directed link.").Add(bytes)
		if bw > 0 && e > 0 {
			c.reg.Gauge("triosim_link_utilization_ratio", "link", name,
				"Fraction of link capacity used over the run so far.").
				Set(c.linkBytes[name] / (bw * e))
		}
	}
	c.reg.Histogram("triosim_flow_duration_seconds", "", "",
		"Network flow durations (start of transfer to last byte).",
		DurationBuckets).Observe(e - s)
}

// RatesRecomputed implements network.FlowObserver.
func (c *Collector) RatesRecomputed(flows int, now sim.VTime) {
	c.recomputes++
	c.reg.Counter("triosim_net_rate_recomputes_total", "", "",
		"Max-min fair-share recomputations performed by the flow network.").Inc()
}

// eventKind renders a dispatched event's kind label: the concrete type name
// with a "/secondary" suffix for coalescing events.
func eventKind(e sim.Event) string {
	name := fmt.Sprintf("%T", e)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	if e.IsSecondary() {
		name += "/secondary"
	}
	return name
}

// EngineHook returns the self-profiler hook: per-event-kind dispatch counts,
// the queue-depth high-water mark (via the injected pending-depth probe), and
// the virtual-time frontier. Register it on the engine before Run.
func (c *Collector) EngineHook(pending func() int) sim.Hook {
	return sim.HookFunc(func(ctx sim.HookCtx) {
		if ctx.Pos != sim.HookPosAfterEvent {
			return
		}
		e, ok := ctx.Item.(sim.Event)
		if !ok {
			return
		}
		kind := eventKind(e)
		c.kinds[kind]++
		c.reg.Counter("triosim_events_total", "kind", kind,
			"Engine events dispatched, by event kind.").Inc()
		if pending != nil {
			if d := pending(); d > c.queuePeak {
				c.queuePeak = d
			}
		}
		c.lastVTime = ctx.Now.Seconds()
	})
}

// RunInfo carries the run-level facts Finalize cannot observe itself.
type RunInfo struct {
	Model       string
	Platform    string
	Parallelism string
	NumGPUs     int
	Iterations  int
	// TotalSec is the makespan; PerIterationSec = TotalSec / Iterations.
	TotalSec        float64
	PerIterationSec float64
	Events          uint64
	// QueueHighWater is the engine's own peak pending-event count
	// (SerialEngine.QueueHighWater). It is tracked at Schedule time, so it
	// sees depths the collector's after-event probe misses (the pre-Run
	// backlog and intra-dispatch peaks); Finalize keeps whichever of the two
	// observations is larger.
	QueueHighWater int
	// NetTotalBytes / NetTransfers come from the flow network's own stats.
	NetTotalBytes float64
	NetTransfers  int
	// NetSolveSeconds is the host time the flow network spent inside max-min
	// solves (zero unless the caller injected a clock — see
	// network.FlowNetwork.SolveClock).
	NetSolveSeconds float64
	Parallel        ParallelStat
}

// Finalize computes the per-GPU exposed-time partition, final link
// utilizations, and collective bandwidths, and assembles the RunReport. Call
// it once, after the engine has drained.
func (c *Collector) Finalize(info RunInfo) *RunReport {
	rep := &RunReport{
		Schema:          ReportSchema,
		Model:           info.Model,
		Platform:        info.Platform,
		Parallelism:     info.Parallelism,
		NumGPUs:         info.NumGPUs,
		Iterations:      info.Iterations,
		TotalSec:        info.TotalSec,
		PerIterationSec: info.PerIterationSec,
		Parallel:        info.Parallel,
	}
	total := info.TotalSec

	// Per-GPU partition: compute is the serial stream's union; comm counts
	// only where it is not hidden under compute; host staging only where
	// neither compute nor comm runs; idle is the exact remainder.
	for g := 0; g < info.NumGPUs; g++ {
		compute := unionSpans(c.computeIvl[g])
		comm := unionSpans(c.commIvl[g])
		host := unionSpans(c.hostIvl[g])
		busy := spansLen(compute)
		exposedComm := spansLen(subtractSpans(comm, compute))
		notIdle := unionSpans(append(append([]span{}, compute...), comm...))
		exposedHost := spansLen(subtractSpans(host, notIdle))
		idle := total - busy - exposedComm - exposedHost
		rep.GPUs = append(rep.GPUs, GPUStat{
			GPU:            g,
			ComputeSec:     busy,
			ExposedCommSec: exposedComm,
			ExposedHostSec: exposedHost,
			IdleSec:        idle,
			ComputeTasks:   c.computeTasks[g],
		})
		label := fmt.Sprintf("gpu%d", g)
		c.reg.Gauge("triosim_gpu_exposed_comm_seconds", "gpu", label,
			"Communication time not hidden under the GPU's compute.").
			Set(exposedComm)
		c.reg.Gauge("triosim_gpu_idle_seconds", "gpu", label,
			"Time the GPU neither computed nor waited on exposed transfers.").
			Set(idle)
	}

	// Links, sorted by direction name.
	names := make([]string, 0, len(c.linkBytes))
	for name := range c.linkBytes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		util := 0.0
		if bw := c.linkBw[name]; bw > 0 && total > 0 {
			util = c.linkBytes[name] / (bw * total)
		}
		rep.Links = append(rep.Links, LinkStat{
			Link:        name,
			Bytes:       c.linkBytes[name],
			Utilization: util,
			Flows:       c.linkFlows[name],
		})
		c.reg.Gauge("triosim_link_utilization_ratio", "link", name,
			"Fraction of link capacity used over the run so far.").Set(util)
		if util > rep.Network.MaxLinkUtilization {
			rep.Network.MaxLinkUtilization = util
		}
	}
	// Per-tier aggregation (tiered cluster topologies only): utilization is
	// tier bytes over the tier's aggregate directed capacity × makespan, so a
	// saturated NIC tier reads near 1.0 even when individual rails idle.
	if len(c.tierBytes) > 0 {
		tierBw := map[string]float64{}
		tierLinks := map[string]int{}
		for i := range c.topo.Links {
			lk := &c.topo.Links[i]
			if lk.Tier == "" {
				continue
			}
			tierBw[lk.Tier] += 2 * lk.Bandwidth // both directions
			tierLinks[lk.Tier] += 2
		}
		tiers := make([]string, 0, len(c.tierBytes))
		for tier := range c.tierBytes {
			tiers = append(tiers, tier)
		}
		sort.Strings(tiers)
		for _, tier := range tiers {
			util := 0.0
			if bw := tierBw[tier]; bw > 0 && total > 0 {
				util = c.tierBytes[tier] / (bw * total)
			}
			rep.Tiers = append(rep.Tiers, TierStat{
				Tier:        tier,
				Bytes:       c.tierBytes[tier],
				Utilization: util,
				Flows:       c.tierFlows[tier],
				Links:       tierLinks[tier],
			})
			c.reg.Gauge("triosim_tier_utilization_ratio", "tier", tier,
				"Fraction of the tier's aggregate capacity the run moved.").
				Set(util)
		}
	}
	rep.Network.TotalBytes = info.NetTotalBytes
	rep.Network.Transfers = info.NetTransfers
	rep.Network.RateRecomputes = c.recomputes
	rep.Network.SolveSeconds = info.NetSolveSeconds
	if info.NetSolveSeconds > 0 {
		c.reg.Gauge("triosim_net_solve_wall_seconds", "", "",
			"Host time spent inside max-min fair-share solves.").
			Set(info.NetSolveSeconds)
	}

	// Collectives, sorted by label.
	labels := make([]string, 0, len(c.coll))
	for label := range c.coll {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		a := c.coll[label]
		st := CollectiveStat{
			Label:      label,
			Algo:       "unknown",
			MovedBytes: a.moved,
			StartSec:   a.start,
			EndSec:     a.end,
		}
		if entry := c.log.Get(label); entry != nil {
			st.Algo = entry.Algo
			st.Ranks = entry.Ranks
			st.PayloadBytes = entry.PayloadBytes
			if dur := a.end - a.start; dur > 0 {
				st.AlgBwBytesPerSec = entry.PayloadBytes / dur
				st.BusBwBytesPerSec = st.AlgBwBytesPerSec * entry.BusFactor
			}
		}
		if !math.IsInf(a.minLinkBw, 1) {
			st.IdealBwBytesPerSec = a.minLinkBw
			if st.IdealBwBytesPerSec > 0 {
				st.Efficiency = st.BusBwBytesPerSec / st.IdealBwBytesPerSec
			}
		}
		rep.Collectives = append(rep.Collectives, st)
	}

	// Engine self-profile.
	rep.Engine.Events = info.Events
	rep.Engine.QueueHighWater = c.queuePeak
	if info.QueueHighWater > rep.Engine.QueueHighWater {
		rep.Engine.QueueHighWater = info.QueueHighWater
	}
	kinds := make([]string, 0, len(c.kinds))
	for k := range c.kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		rep.Engine.ByKind = append(rep.Engine.ByKind,
			KindCount{Kind: k, Count: c.kinds[k]})
	}
	c.reg.Gauge("triosim_event_queue_depth_peak", "", "",
		"High-water mark of the engine's pending-event queue.").
		Set(float64(c.queuePeak))
	// The merged high-water (engine's Schedule-time tracking vs the hook's
	// after-event probe) — the EngineStat value the JSON report carries.
	c.reg.Gauge("triosim_engine_queue_high_water", "", "",
		"Peak pending-event count (engine Schedule-time high-water merged "+
			"with the dispatch-probe peak).").
		Set(float64(rep.Engine.QueueHighWater))
	c.reg.Gauge("triosim_virtual_time_seconds", "", "",
		"Virtual-time frontier of the simulation.").Set(c.lastVTime)

	rep.Metrics = c.reg.Export()
	return rep
}
