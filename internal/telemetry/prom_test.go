package telemetry

import (
	"strings"
	"testing"
)

func TestPromTextDedupesFamilies(t *testing.T) {
	p := NewPromText()
	p.Gauge("triosim_queue_depth", "Jobs queued.", 3)
	p.Gauge("triosim_queue_depth", "Jobs queued (duplicate writer).", 7)
	p.Counter("triosim_requests_total", "Requests.", 10)

	out := string(p.Bytes())
	if got := strings.Count(out, "# TYPE triosim_queue_depth "); got != 1 {
		t.Fatalf("family declared %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, "triosim_queue_depth 3") {
		t.Fatalf("first registration's sample missing:\n%s", out)
	}
	if strings.Contains(out, "triosim_queue_depth 7") {
		t.Fatalf("duplicate registration's sample leaked:\n%s", out)
	}
	if !strings.Contains(out, "triosim_requests_total 10") {
		t.Fatalf("unrelated family lost:\n%s", out)
	}
}

func TestPromTextHeaderContract(t *testing.T) {
	p := NewPromText()
	if !p.Header("m_a", "gauge", "first") {
		t.Fatal("first Header returned false")
	}
	if p.Header("m_a", "counter", "second") {
		t.Fatal("duplicate Header returned true")
	}
	p.Samplef("m_a %d", 1)
	out := string(p.Bytes())
	if !strings.Contains(out, "# HELP m_a first") ||
		!strings.Contains(out, "# TYPE m_a gauge") {
		t.Fatalf("preamble missing:\n%s", out)
	}
	if strings.Contains(out, "second") {
		t.Fatalf("losing Header still wrote output:\n%s", out)
	}
}

// Raw must merge a pre-rendered registry snapshot family-by-family: families
// already registered are dropped whole (HELP, TYPE, and samples), the rest
// pass through untouched.
func TestPromTextRawSkipsRegisteredFamilies(t *testing.T) {
	p := NewPromText()
	p.Gauge("triosim_tracecache_traces", "Entries.", 5)

	block := strings.Join([]string{
		"# HELP triosim_tracecache_traces Cached traces.",
		"# TYPE triosim_tracecache_traces gauge",
		"triosim_tracecache_traces 99",
		"# HELP triosim_events_total Events dispatched.",
		"# TYPE triosim_events_total counter",
		`triosim_events_total{kind="compute"} 12`,
		`triosim_events_total{kind="link"} 4`,
		"",
	}, "\n")
	p.Raw([]byte(block))

	out := string(p.Bytes())
	if strings.Contains(out, "triosim_tracecache_traces 99") {
		t.Fatalf("raw block overrode an already-registered family:\n%s", out)
	}
	if !strings.Contains(out, "triosim_tracecache_traces 5") {
		t.Fatalf("original sample lost:\n%s", out)
	}
	if got := strings.Count(out, "# TYPE triosim_tracecache_traces "); got != 1 {
		t.Fatalf("family declared %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, `triosim_events_total{kind="compute"} 12`) ||
		!strings.Contains(out, `triosim_events_total{kind="link"} 4`) {
		t.Fatalf("fresh family from raw block lost samples:\n%s", out)
	}
	if !strings.Contains(out, "# HELP triosim_events_total Events dispatched.") {
		t.Fatalf("fresh family's HELP line lost:\n%s", out)
	}
}

// A Raw block registers its families: a later direct write of the same name
// must lose, and a second Raw of the same block must be a no-op.
func TestPromTextRawRegistersFamilies(t *testing.T) {
	block := []byte("# TYPE m_raw gauge\nm_raw 1\n")
	p := NewPromText()
	p.Raw(block)
	p.Gauge("m_raw", "late direct writer", 2)
	p.Raw(block)

	out := string(p.Bytes())
	if got := strings.Count(out, "m_raw 1"); got != 1 {
		t.Fatalf("raw sample appeared %d times, want 1:\n%s", got, out)
	}
	if strings.Contains(out, "m_raw 2") {
		t.Fatalf("direct writer overrode the raw-registered family:\n%s", out)
	}
}

func TestPromTextHistogram(t *testing.T) {
	p := NewPromText()
	p.Histogram("m_latency_seconds", "Latency.",
		[]float64{0.1, 0.5}, []uint64{3, 4, 2}, 1.9, 9)
	out := string(p.Bytes())
	for _, want := range []string{
		`m_latency_seconds_bucket{le="0.1"} 3`,
		`m_latency_seconds_bucket{le="0.5"} 7`,
		`m_latency_seconds_bucket{le="+Inf"} 9`,
		"m_latency_seconds_sum 1.9",
		"m_latency_seconds_count 9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram rendering missing %q:\n%s", want, out)
		}
	}
}
