package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-5) // ignored: counters only go up
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %v", c.Value())
	}

	var g Gauge
	g.Set(2)
	g.SetMax(1) // ignored
	g.SetMax(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v", g.Value())
	}

	r := NewRegistry()
	h := r.Histogram("d", "", "", "", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	// Prometheus le semantics: a value equal to a bound falls in that bound's
	// bucket.
	if got := h.Counts(); got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("buckets = %v", got)
	}
}

func TestRegistryReusesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("triosim_x_total", "gpu", "gpu0", "help")
	b := r.Counter("triosim_x_total", "gpu", "gpu0", "help")
	if a != b {
		t.Fatal("same (name, label) must return the same counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("series not shared")
	}
}

func TestExportSortedAndStable(t *testing.T) {
	build := func(order []string) []MetricPoint {
		r := NewRegistry()
		for _, l := range order {
			r.Counter("triosim_bytes_total", "link", l, "h").Add(1)
		}
		r.Gauge("triosim_util", "link", "a", "h").Set(0.5)
		return r.Export()
	}
	x := build([]string{"b", "a", "c"})
	y := build([]string{"c", "b", "a"})
	if len(x) != 4 || len(x) != len(y) {
		t.Fatalf("export sizes %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i].Name != y[i].Name || x[i].LabelValue != y[i].LabelValue ||
			x[i].Value != y[i].Value {
			t.Fatalf("export order differs at %d: %+v vs %+v", i, x[i], y[i])
		}
	}
	if x[0].Name != "triosim_bytes_total" || x[0].LabelValue != "a" {
		t.Fatalf("unexpected first point %+v", x[0])
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("triosim_events_total", "kind", "funcEvent", "Events.").Add(42)
	r.Gauge("triosim_link_utilization_ratio", "link", "gpu0->sw", "Util.").
		Set(0.25)
	h := r.Histogram("triosim_flow_duration_seconds", "", "", "Durations.",
		[]float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP triosim_events_total Events.",
		"# TYPE triosim_events_total counter",
		`triosim_events_total{kind="funcEvent"} 42`,
		`triosim_link_utilization_ratio{link="gpu0->sw"} 0.25`,
		"# TYPE triosim_flow_duration_seconds histogram",
		`triosim_flow_duration_seconds_bucket{le="0.001"} 1`,
		`triosim_flow_duration_seconds_bucket{le="0.1"} 2`,
		`triosim_flow_duration_seconds_bucket{le="+Inf"} 2`,
		"triosim_flow_duration_seconds_sum 0.0505",
		"triosim_flow_duration_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestOpCategory(t *testing.T) {
	cases := map[string]string{
		"conv2d":      "conv",
		"conv2d_bwd":  "conv",
		"linear":      "gemm",
		"matmul":      "gemm",
		"batchnorm":   "norm",
		"layernorm":   "norm",
		"maxpool_bwd": "pool",
		"relu":        "activation",
		"gelu":        "activation",
		"add_residual": func() string {
			return "elementwise"
		}(),
		"sgd_step":     "optimizer",
		"adam_step":    "optimizer",
		"crossentropy": "loss",
		"mystery_op":   "other",
	}
	for name, want := range cases {
		if got := OpCategory(name); got != want {
			t.Errorf("OpCategory(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestSpanAlgebra(t *testing.T) {
	u := unionSpans([]span{{5, 7}, {1, 3}, {2, 4}})
	if len(u) != 2 || u[0] != (span{1, 4}) || u[1] != (span{5, 7}) {
		t.Fatalf("union = %v", u)
	}
	if got := spansLen(u); got != 5 {
		t.Fatalf("len = %v", got)
	}
	d := subtractSpans(u, []span{{2, 6}})
	if len(d) != 2 || d[0] != (span{1, 2}) || d[1] != (span{6, 7}) {
		t.Fatalf("subtract = %v", d)
	}
	if got := subtractSpans([]span{{0, 10}}, u); spansLen(got) != 5 {
		t.Fatalf("complement = %v", got)
	}
}

func TestCollectiveLogNilSafe(t *testing.T) {
	var log *CollectiveLog
	log.Record("x", "ring-allreduce", 4, 100, 1.5) // must not panic
	if log.Get("x") != nil {
		t.Fatal("nil log returned an entry")
	}
	log = NewCollectiveLog()
	log.Record("x", "ring-allreduce", 4, 100, 1.5)
	e := log.Get("x")
	if e == nil || e.Algo != "ring-allreduce" || e.Ranks != 4 ||
		e.PayloadBytes != 100 || e.BusFactor != 1.5 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestReportValidate(t *testing.T) {
	rep := &RunReport{
		Schema:   ReportSchema,
		TotalSec: 2,
		GPUs: []GPUStat{{
			GPU: 0, ComputeSec: 1, ExposedCommSec: 0.5,
			ExposedHostSec: 0.25, IdleSec: 0.25,
		}},
		Links: []LinkStat{{Link: "a->b", Bytes: 10, Utilization: 0.5}},
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	bad := *rep
	bad.GPUs = []GPUStat{{GPU: 0, ComputeSec: 1, IdleSec: 0.2}}
	if bad.Validate() == nil {
		t.Fatal("mis-summing GPU accepted")
	}

	bad = *rep
	bad.Schema = "nope"
	if bad.Validate() == nil {
		t.Fatal("wrong schema accepted")
	}

	bad = *rep
	bad.Links = []LinkStat{{Link: "a->b", Bytes: 1, Utilization: 1.5}}
	if bad.Validate() == nil {
		t.Fatal("utilization > 1 accepted")
	}
}

func TestParseReportRoundTrip(t *testing.T) {
	rep := &RunReport{
		Schema: ReportSchema, Model: "m", Platform: "P1",
		Parallelism: "ddp", NumGPUs: 2, Iterations: 1, TotalSec: 1,
		GPUs: []GPUStat{
			{GPU: 0, ComputeSec: 0.6, ExposedCommSec: 0.4},
			{GPU: 1, ComputeSec: 1},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != "m" || len(got.GPUs) != 2 || got.GPUs[1].ComputeSec != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := ParseReport([]byte(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
