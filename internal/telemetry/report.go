package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"triosim/internal/spantrace"
)

// ReportSchema versions the RunReport JSON layout. Consumers (triosimvet
// -report, CI smoke checks, dashboards) key on it before parsing the rest.
const ReportSchema = "triosim.runreport/v1"

// RunReport is the structured end-of-run telemetry document: the quantitative
// answer to "where did the simulated time go, and what did the simulator
// itself do". It is emitted on core.Result and via triosim -metrics-out.
//
// All slices are sorted and all floats derive from virtual time, so two runs
// of the same configuration marshal to byte-identical JSON (wall-clock
// fields stay zero unless the caller injected a Clock).
type RunReport struct {
	Schema string `json:"schema"`

	// Workload identification.
	Model       string `json:"model,omitempty"`
	Platform    string `json:"platform,omitempty"`
	Parallelism string `json:"parallelism,omitempty"`
	NumGPUs     int    `json:"num_gpus"`
	Iterations  int    `json:"iterations"`

	// Simulated-time outcome.
	TotalSec        float64 `json:"total_sec"`
	PerIterationSec float64 `json:"per_iteration_sec"`

	GPUs        []GPUStat        `json:"gpus"`
	Links       []LinkStat       `json:"links,omitempty"`
	Tiers       []TierStat       `json:"tiers,omitempty"`
	Network     NetStat          `json:"network"`
	Collectives []CollectiveStat `json:"collectives,omitempty"`
	Parallel    ParallelStat     `json:"parallel"`
	Engine      EngineStat       `json:"engine"`
	// Faults carries fault-injection and resilience accounting (nil unless
	// the run had a fault schedule configured).
	Faults *FaultReport `json:"faults,omitempty"`
	// Serving carries the request-level inference-serving section (nil
	// unless the run was a serving simulation — core.Serve).
	Serving *ServingStat `json:"serving,omitempty"`
	// TraceCache carries the shared trace cache's counters (nil unless the
	// run used a cache). The counters accumulate across every simulation
	// sharing the store, so this section — unlike the rest of the report —
	// is NOT covered by the byte-identity guarantee above: the same config
	// reports different hit counts depending on what ran before it.
	TraceCache *TraceCacheStat `json:"trace_cache,omitempty"`
	// CriticalPath is the makespan-setting chain through the span DAG with
	// per-category attribution and the near-critical slack table (nil unless
	// the run enabled span tracing — core.Config.SpanTrace).
	CriticalPath *spantrace.Report `json:"critical_path,omitempty"`

	// Metrics is the raw registry dump backing the aggregates above.
	Metrics []MetricPoint `json:"metrics,omitempty"`
}

// GPUStat is the per-GPU time breakdown. The four components partition the
// run exactly: ComputeSec + ExposedCommSec + ExposedHostSec + IdleSec ==
// TotalSec. Communication fully overlapped with this GPU's compute does not
// appear (that is the point of exposed-comm accounting).
type GPUStat struct {
	GPU            int     `json:"gpu"`
	ComputeSec     float64 `json:"compute_sec"`
	ExposedCommSec float64 `json:"exposed_comm_sec"`
	ExposedHostSec float64 `json:"exposed_host_sec"`
	IdleSec        float64 `json:"idle_sec"`
	ComputeTasks   int     `json:"compute_tasks"`
}

// LinkStat is one directed link's traffic accounting.
type LinkStat struct {
	// Link names the direction, e.g. "gpu0->nvswitch".
	Link  string  `json:"link"`
	Bytes float64 `json:"bytes"`
	// Utilization is bytes / (bandwidth × makespan): the fraction of the
	// link's capacity the run actually moved.
	Utilization float64 `json:"utilization"`
	Flows       int     `json:"flows"`
}

// TierStat aggregates traffic for one hierarchy tier (nvlink, nic, fabric,
// host) on tiered cluster topologies — empty on single-node topologies. It
// answers the scaling question per-link stats cannot: which level of the
// hierarchy the workload saturates.
type TierStat struct {
	Tier  string  `json:"tier"`
	Bytes float64 `json:"bytes"`
	// Utilization is bytes / (aggregate tier bandwidth × makespan), where
	// aggregate bandwidth counts both directions of every link in the tier.
	Utilization float64 `json:"utilization"`
	Flows       int     `json:"flows"`
	// Links is the tier's directed-link count (2× its physical links).
	Links int `json:"links"`
}

// NetStat aggregates the flow network.
type NetStat struct {
	TotalBytes     float64 `json:"total_bytes"`
	Transfers      int     `json:"transfers"`
	RateRecomputes int     `json:"rate_recomputes"`
	// MaxLinkUtilization is the highest per-direction link utilization.
	MaxLinkUtilization float64 `json:"max_link_utilization"`
	// SolveSeconds is host time inside max-min solves (self-profiling;
	// wall-clock derived, only set when the caller injected a Clock).
	SolveSeconds float64 `json:"solve_wall_seconds,omitempty"`
}

// CollectiveStat is one collective operation instance (e.g. one DDP bucket's
// AllReduce) with NCCL-style bandwidth accounting: AlgBwBytesPerSec is
// payload/duration, BusBwBytesPerSec multiplies in the algorithm's traffic
// factor (2(N−1)/N for allreduce, (N−1)/N for reduce-scatter/all-gather), and
// Efficiency compares bus bandwidth to the bottleneck link on the routes the
// collective actually used.
type CollectiveStat struct {
	Label            string  `json:"label"`
	Algo             string  `json:"algo"`
	Ranks            int     `json:"ranks"`
	PayloadBytes     float64 `json:"payload_bytes"`
	MovedBytes       float64 `json:"moved_bytes"`
	StartSec         float64 `json:"start_sec"`
	EndSec           float64 `json:"end_sec"`
	AlgBwBytesPerSec float64 `json:"alg_bw_bytes_per_sec"`
	BusBwBytesPerSec float64 `json:"bus_bw_bytes_per_sec"`
	// IdealBwBytesPerSec is the minimum link bandwidth on the routes used.
	IdealBwBytesPerSec float64 `json:"ideal_bw_bytes_per_sec"`
	Efficiency         float64 `json:"efficiency"`
}

// ParallelStat describes the extrapolated parallelism structure.
type ParallelStat struct {
	Strategy string `json:"strategy,omitempty"`
	Replicas int    `json:"replicas,omitempty"`
	Stages   int    `json:"stages,omitempty"`
	// TPRanks is the tensor-parallel group size (3D parallelism only).
	TPRanks int `json:"tp_ranks,omitempty"`
	// Buckets is the DDP gradient-bucket count per iteration.
	Buckets int `json:"buckets,omitempty"`
	// StageOfLayer maps layer index → pipeline stage (PP only).
	StageOfLayer []int `json:"stage_of_layer,omitempty"`
}

// EngineStat is the simulator self-profile.
type EngineStat struct {
	Events uint64 `json:"events"`
	// ByKind counts dispatched events per event kind, sorted by kind.
	ByKind []KindCount `json:"by_kind,omitempty"`
	// QueueHighWater is the deepest the event queue got.
	QueueHighWater int `json:"queue_high_water"`
	// EventDigest is the hex FNV-1a digest of the dispatched event schedule
	// ("0x..."), the run's replay-determinism fingerprint. Two reports for
	// identical configurations must carry identical digests — the triosimd
	// byte-identity gate leans on this field.
	EventDigest string `json:"event_digest,omitempty"`
	// WallSeconds and EventsPerSecond are wall-clock derived and only set
	// when the caller injected a Clock (zero in deterministic test runs).
	WallSeconds     float64 `json:"wall_seconds,omitempty"`
	EventsPerSecond float64 `json:"events_per_second,omitempty"`
}

// TraceCacheStat is the shared trace cache's counter snapshot at the end of
// the run: how many trace collections and timer fits were skipped, and the
// approximate bytes the cached traces retain.
type TraceCacheStat struct {
	TraceHits   uint64 `json:"trace_hits"`
	TraceMisses uint64 `json:"trace_misses"`
	TimerHits   uint64 `json:"timer_hits"`
	TimerMisses uint64 `json:"timer_misses"`
	Traces      int    `json:"traces"`
	Timers      int    `json:"timers"`
	Bytes       int64  `json:"bytes"`
}

// KindCount is one per-event-kind dispatch count.
type KindCount struct {
	Kind  string `json:"kind"`
	Count uint64 `json:"count"`
}

// FaultReport is the fault-injection and resilience section: which windows
// perturbed the run, how long some hardware was degraded, and the
// checkpoint/restart overlay's goodput accounting. The four time components
// partition the extended timeline: UsefulSec + CheckpointSec + ReplaySec +
// RestartSec == ExtendedSec.
type FaultReport struct {
	Windows       []FaultWindow `json:"windows,omitempty"`
	DegradedSec   float64       `json:"degraded_sec"`
	Failures      int           `json:"failures"`
	Checkpoints   int           `json:"checkpoints"`
	CheckpointSec float64       `json:"checkpoint_sec"`
	ReplaySec     float64       `json:"replay_sec"`
	RestartSec    float64       `json:"restart_sec"`
	UsefulSec     float64       `json:"useful_sec"`
	ExtendedSec   float64       `json:"extended_sec"`
	// Goodput is UsefulSec / ExtendedSec in [0, 1].
	Goodput float64 `json:"goodput"`
}

// LatencyQuantiles summarizes a latency sample with deterministic
// nearest-rank percentiles (sorted[ceil(q·n)−1]) — no interpolation, so a
// given sample always reports the same values bit for bit.
type LatencyQuantiles struct {
	MeanSec float64 `json:"mean_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P90Sec  float64 `json:"p90_sec"`
	P99Sec  float64 `json:"p99_sec"`
	P999Sec float64 `json:"p999_sec"`
	MaxSec  float64 `json:"p100_sec"`
}

// monotone reports whether the quantiles are ordered p50 ≤ p90 ≤ p99 ≤
// p999 ≤ max and non-negative.
func (q LatencyQuantiles) monotone() bool {
	return q.P50Sec >= 0 && q.P50Sec <= q.P90Sec && q.P90Sec <= q.P99Sec &&
		q.P99Sec <= q.P999Sec && q.P999Sec <= q.MaxSec
}

// ServingStat is the request-level serving section of a RunReport: offered
// vs achieved load, latency and time-to-first-token tails, and continuous
// batching efficiency.
type ServingStat struct {
	Scheduler string `json:"scheduler"`
	Replicas  int    `json:"replicas"`
	MaxBatch  int    `json:"max_batch"`
	Requests  int    `json:"requests"`
	Completed int    `json:"completed"`

	OfferedRPS    float64 `json:"offered_rps"`
	MakespanSec   float64 `json:"makespan_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	TokensPerSec  float64 `json:"tokens_per_sec"`

	Latency LatencyQuantiles `json:"latency"`
	TTFT    LatencyQuantiles `json:"ttft"`

	Steps              int     `json:"steps"`
	MeanBatch          float64 `json:"mean_batch"`
	BatchingEfficiency float64 `json:"batching_efficiency"`
	GeneratedTokens    int     `json:"generated_tokens"`
	KVPeakBytes        float64 `json:"kv_peak_bytes"`
}

// FaultWindow is one fault event's footprint (GPUFail markers have
// StartSec == EndSec).
type FaultWindow struct {
	Kind     string  `json:"kind"`
	Resource string  `json:"resource"`
	Factor   float64 `json:"factor,omitempty"`
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
}

// WriteJSON writes the report as indented JSON. Field order is fixed by the
// struct layout and slices are pre-sorted, so output is deterministic.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// sumTolerance is the relative float tolerance for the per-GPU partition
// invariant check.
const sumTolerance = 1e-6

// Validate checks the report's internal invariants: schema tag, the exact
// per-GPU time partition, utilization ranges, and collective sanity.
func (r *RunReport) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("telemetry: schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.TotalSec < 0 || r.PerIterationSec < 0 {
		return fmt.Errorf("telemetry: negative total time")
	}
	for _, g := range r.GPUs {
		sum := g.ComputeSec + g.ExposedCommSec + g.ExposedHostSec + g.IdleSec
		tol := sumTolerance * math.Max(1e-12, r.TotalSec)
		if math.Abs(sum-r.TotalSec) > tol {
			return fmt.Errorf("telemetry: gpu%d breakdown sums to %g, total is %g",
				g.GPU, sum, r.TotalSec)
		}
		if g.ComputeSec < 0 || g.ExposedCommSec < 0 || g.ExposedHostSec < 0 ||
			g.IdleSec < -tol {
			return fmt.Errorf("telemetry: gpu%d has a negative component", g.GPU)
		}
	}
	for _, l := range r.Links {
		if l.Utilization < 0 || l.Utilization > 1+sumTolerance {
			return fmt.Errorf("telemetry: link %s utilization %g out of [0,1]",
				l.Link, l.Utilization)
		}
		if l.Bytes < 0 {
			return fmt.Errorf("telemetry: link %s negative bytes", l.Link)
		}
	}
	for _, t := range r.Tiers {
		if t.Utilization < 0 || t.Utilization > 1+sumTolerance {
			return fmt.Errorf("telemetry: tier %s utilization %g out of [0,1]",
				t.Tier, t.Utilization)
		}
		if t.Bytes < 0 {
			return fmt.Errorf("telemetry: tier %s negative bytes", t.Tier)
		}
	}
	for _, c := range r.Collectives {
		if c.EndSec < c.StartSec {
			return fmt.Errorf("telemetry: collective %s ends before it starts",
				c.Label)
		}
		if c.Ranks < 0 || c.PayloadBytes < 0 || c.MovedBytes < 0 {
			return fmt.Errorf("telemetry: collective %s has negative fields",
				c.Label)
		}
	}
	if f := r.Faults; f != nil {
		if f.Goodput < 0 || f.Goodput > 1+sumTolerance {
			return fmt.Errorf("telemetry: fault goodput %g out of [0,1]",
				f.Goodput)
		}
		if f.DegradedSec < 0 || f.CheckpointSec < 0 || f.ReplaySec < 0 ||
			f.RestartSec < 0 || f.UsefulSec < 0 || f.ExtendedSec < 0 {
			return fmt.Errorf("telemetry: fault section has negative times")
		}
		sum := f.UsefulSec + f.CheckpointSec + f.ReplaySec + f.RestartSec
		tol := sumTolerance * math.Max(1e-12, f.ExtendedSec)
		if math.Abs(sum-f.ExtendedSec) > tol {
			return fmt.Errorf(
				"telemetry: fault accounting sums to %g, extended total is %g",
				sum, f.ExtendedSec)
		}
		for _, w := range f.Windows {
			if w.EndSec < w.StartSec {
				return fmt.Errorf("telemetry: fault window %s/%s ends before it starts",
					w.Kind, w.Resource)
			}
		}
	}
	if s := r.Serving; s != nil {
		if s.Completed > s.Requests || s.Completed < 0 {
			return fmt.Errorf("telemetry: serving completed %d of %d requests",
				s.Completed, s.Requests)
		}
		if s.BatchingEfficiency < 0 || s.BatchingEfficiency > 1+sumTolerance {
			return fmt.Errorf("telemetry: serving batching efficiency %g out of [0,1]",
				s.BatchingEfficiency)
		}
		if s.ThroughputRPS < 0 || s.TokensPerSec < 0 || s.MakespanSec < 0 ||
			s.KVPeakBytes < 0 || s.GeneratedTokens < 0 || s.Steps < 0 {
			return fmt.Errorf("telemetry: serving section has negative fields")
		}
		if !s.Latency.monotone() {
			return fmt.Errorf("telemetry: serving latency quantiles not monotone: %+v",
				s.Latency)
		}
		if !s.TTFT.monotone() {
			return fmt.Errorf("telemetry: serving TTFT quantiles not monotone: %+v",
				s.TTFT)
		}
	}
	if cp := r.CriticalPath; cp != nil {
		if err := cp.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ParseReport decodes and validates a RunReport JSON document.
func ParseReport(data []byte) (*RunReport, error) {
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("telemetry: parse report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// opCategories maps operator-name substrings to breakdown categories, first
// match wins. The names come from the model zoo / PyTorch-style traces.
var opCategories = []struct{ substr, cat string }{
	{"conv", "conv"},
	{"linear", "gemm"},
	{"matmul", "gemm"},
	{"gemm", "gemm"},
	{"attention", "gemm"},
	{"attn", "gemm"},
	{"embedding", "gemm"},
	{"norm", "norm"},
	{"pool", "pool"},
	{"relu", "activation"},
	{"gelu", "activation"},
	{"sigmoid", "activation"},
	{"tanh", "activation"},
	{"softmax", "activation"},
	{"dropout", "elementwise"},
	{"add", "elementwise"},
	{"mul", "elementwise"},
	{"scale", "elementwise"},
	{"sgd", "optimizer"},
	{"adam", "optimizer"},
	{"optimizer", "optimizer"},
	{"step", "optimizer"},
	{"loss", "loss"},
	{"entropy", "loss"},
}

// OpCategory classifies an operator name into a coarse breakdown category
// (conv, gemm, norm, pool, activation, elementwise, optimizer, loss, other).
// Shared by the collector's op-duration histograms and cmd/traceinfo.
func OpCategory(name string) string {
	n := strings.ToLower(name)
	for _, e := range opCategories {
		if strings.Contains(n, e.substr) {
			return e.cat
		}
	}
	return "other"
}
