package digest

import (
	"strings"
	"testing"
)

func TestSumDeterministic(t *testing.T) {
	type key struct {
		Model string
		Batch int
		Noise float64
	}
	a := key{"resnet50", 128, 0.02}
	d1 := MustSum("test", a)
	d2 := MustSum("test", a)
	if d1 != d2 {
		t.Fatalf("same value digested differently: %s vs %s", d1, d2)
	}
	if len(d1) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(d1))
	}
	if d1 != strings.ToLower(d1) {
		t.Fatalf("digest not lower-case hex: %s", d1)
	}
}

func TestSumDistinguishesValues(t *testing.T) {
	type key struct {
		Model string
		Batch int
	}
	base := MustSum("test", key{"resnet50", 128})
	for _, other := range []key{
		{"resnet50", 64},
		{"resnet18", 128},
		{"", 0},
	} {
		if MustSum("test", other) == base {
			t.Fatalf("distinct values %+v collided", other)
		}
	}
}

// Maps digest by sorted key order: two maps with the same entries inserted
// in different orders must digest equally.
func TestSumMapOrderIndependent(t *testing.T) {
	m1 := map[string]int{}
	m2 := map[string]int{}
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, k := range keys {
		m1[k] = i
	}
	for i := len(keys) - 1; i >= 0; i-- {
		m2[keys[i]] = i
	}
	if MustSum("test", m1) != MustSum("test", m2) {
		t.Fatal("map insertion order changed the digest")
	}
}

// The domain tag must separate structurally identical values: a tracecache
// key and a server request that happen to marshal identically must not
// alias.
func TestDomainSeparation(t *testing.T) {
	v := struct{ Name string }{"resnet50"}
	if Sum1, Sum2 := MustSum("tracecache.Key", v), MustSum("server.Request", v); Sum1 == Sum2 {
		t.Fatal("different domains produced the same digest")
	}
}

// The separator byte must prevent ambiguous (domain, payload) splits:
// ("ab", "c"...) vs ("a", "bc"...) style re-bracketing.
func TestDomainPayloadBoundary(t *testing.T) {
	// domain "x" + json `"y1"` vs domain `x"y` + ... is hard to construct
	// precisely through JSON; check the simple prefix case instead.
	a := MustSum("ab", "c")
	b := MustSum("a", "bc")
	if a == b {
		t.Fatal("domain/payload boundary is ambiguous")
	}
}

func TestSumErrors(t *testing.T) {
	if _, err := Sum("test", make(chan int)); err == nil {
		t.Fatal("expected marshal error for a channel value")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSum did not panic on unmarshalable value")
		}
	}()
	MustSum("test", func() {})
}

func TestShort(t *testing.T) {
	d := MustSum("test", 42)
	if s := Short(d); len(s) != ShortLen || !strings.HasPrefix(d, s) {
		t.Fatalf("Short(%s) = %s", d, s)
	}
	if Short("abc") != "abc" {
		t.Fatal("Short must pass through already-short strings")
	}
}
