// Package digest content-addresses configuration values: it canonicalizes a
// Go value into bytes and hashes them, so "the same configuration" has one
// spelling everywhere it is used as a key. Two subsystems share it today —
// the trace cache keys collected traces and fitted timers by their inputs,
// and the triosimd server coalesces identical simulation requests into a
// single run (singleflight) — and both must agree on what "identical" means.
//
// Canonical form is encoding/json: map keys are sorted by the encoder and
// struct fields marshal in declaration order, so equal values produce equal
// bytes regardless of map iteration order or the call site. The hash is
// SHA-256, making accidental collisions a non-concern for cache keys; a
// digest is therefore safe to use as a map key, a filename stem, or a wire
// identifier.
//
// Every digest is bound to a domain string ("tracecache.Key",
// "server.Request", ...). Two structurally identical values from different
// domains digest differently, so a key type can evolve independently of
// every other digest user without silent cross-domain aliasing.
package digest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Sum returns the hex SHA-256 digest of the domain tag plus the canonical
// JSON encoding of v. Values containing channels, functions, or other
// unmarshalable types return an error.
func Sum(domain string, v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("digest: %s: %w", domain, err)
	}
	h := sha256.New()
	h.Write([]byte(domain))
	h.Write([]byte{0}) // unambiguous domain/payload separator
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// MustSum is Sum for values that are marshalable by construction (plain
// structs of scalars and strings, like cache keys). It panics on a marshal
// failure, which is always a programming error at the call site.
func MustSum(domain string, v any) string {
	d, err := Sum(domain, v)
	if err != nil {
		panic(err)
	}
	return d
}

// ShortLen is the prefix length Short keeps: 12 hex chars (48 bits) is
// plenty for display labels while staying readable in logs.
const ShortLen = 12

// Short abbreviates a digest for human-facing output (log lines, scenario
// names). Never use the short form as a key.
func Short(d string) string {
	if len(d) <= ShortLen {
		return d
	}
	return d[:ShortLen]
}
