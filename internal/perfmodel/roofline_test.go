package perfmodel

import (
	"math"
	"testing"

	"triosim/internal/gpu"
	"triosim/internal/hwsim"
	"triosim/internal/sim"
)

func TestFitRooflineRecoversDeviceScale(t *testing.T) {
	tr, err := hwsim.CollectTrace("resnet50", 128, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitRoofline(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Fitted achieved FLOP/s should land near the emulator's effective
	// throughput for big kernels: PeakFLOPS × UtilMax, within a factor 2.
	eff := gpu.A100.PeakFLOPS * gpu.A100.UtilMax
	if m.P < eff/2 || m.P > eff*2 {
		t.Fatalf("fitted P = %.3g, emulator effective %.3g", m.P, eff)
	}
	effW := gpu.A100.MemBandwidth * gpu.A100.MemEff
	if m.W < effW/2 || m.W > effW*2 {
		t.Fatalf("fitted W = %.3g, emulator effective %.3g", m.W, effW)
	}
	if m.C < 0 {
		t.Fatalf("negative overhead %g", m.C)
	}
}

func TestRooflinePredictsHeldOutBatch(t *testing.T) {
	tr, err := hwsim.CollectTrace("resnet18", 128, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitRoofline(tr)
	if err != nil {
		t.Fatal(err)
	}
	tr256, err := hwsim.CollectTrace("resnet18", 256, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	var pred, actual float64
	for i := range tr256.Ops {
		op := &tr256.Ops[i]
		b := float64(op.BytesIn(tr256.Tensors) + op.BytesOut(tr256.Tensors))
		pred += float64(m.Predict(op.FLOPs, b))
		actual += float64(op.Time)
	}
	rel := math.Abs(pred-actual) / actual
	if rel > 0.25 {
		t.Fatalf("roofline batch extrapolation error %.1f%%", rel*100)
	}
}

func TestHybridBeatsLiOnSingleSizeOps(t *testing.T) {
	// Transformers repeat identical matmuls: Li's per-type fit degenerates
	// to a proportional fallback (no intercept), which misprices shrunken
	// tensor-parallel shards. The hybrid's pooled roofline should predict
	// sharded transformer operators at least as well overall.
	tr, err := hwsim.CollectTrace("gpt2", 128, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	li, err := Fit(tr)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := FitHybrid(tr)
	if err != nil {
		t.Fatal(err)
	}
	hw := hwsim.NewTimer(&gpu.A100)

	// Evaluate on 4-way shards of the parallelizable ops (the TP setting).
	var liErr, hyErr float64
	var n int
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if !op.Parallelizable {
			continue
		}
		b := float64(op.BytesIn(tr.Tensors)+op.BytesOut(tr.Tensors)) / 4
		f := op.FLOPs / 4
		truth := float64(hw.OpTime(op.Name, f, b, 0, true))
		liErr += math.Abs(float64(li.Predict(op.Name, f, b))-truth) / truth
		hyErr += math.Abs(float64(hy.Predict(op.Name, f, b))-truth) / truth
		n++
	}
	liErr /= float64(n)
	hyErr /= float64(n)
	if hyErr > liErr {
		t.Fatalf("hybrid (%.2f%%) should not lose to Li (%.2f%%) on sharded transformer ops",
			hyErr*100, liErr*100)
	}
}

func TestHybridPassthroughAndRouting(t *testing.T) {
	tr, err := hwsim.CollectTrace("resnet18", 64, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := FitHybrid(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := hy.OpTime("conv2d", 1e9, 1e6, 7*sim.USec, false); got != 7*sim.USec {
		t.Fatalf("passthrough broken: %v", got)
	}
	if hy.OpTime("conv2d", 1e9, 1e6, 7*sim.USec, true) <= 0 {
		t.Fatal("scaled prediction missing")
	}
	// conv2d has many sizes → Li route; a made-up op → roofline route.
	if !hy.diverse("conv2d") {
		t.Fatal("conv2d should be size-diverse")
	}
	if hy.diverse("warp-op") {
		t.Fatal("unknown op cannot be diverse")
	}
	if hy.Predict("warp-op", 1e10, 1e7) !=
		hy.Roofline.Predict(1e10, 1e7) {
		t.Fatal("unknown op should route to the roofline")
	}
}

func TestFitRooflineRejectsBadTraces(t *testing.T) {
	tr, err := hwsim.CollectTrace("resnet18", 16, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	tr.Ops[0].Time = 0
	if _, err := FitRoofline(tr); err == nil {
		t.Fatal("unstamped op accepted")
	}
}
