// Package perfmodel implements the operator performance model TrioSim uses
// to predict execution times when the simulated configuration deviates from
// the trace (Li's Model [34]: a linear-regression, operator-level GPU time
// predictor, extended here to training operators).
//
// For every operator type, the model fits time ≈ a·FLOPs + b·bytes + c on
// the samples the single-GPU trace provides (one sample per operator
// instance; a DNN trace contains the same operator at many sizes, which
// spreads the fit). Predictions for resized operators — different batch
// size, tensor-parallel shards, pipeline micro-batches — evaluate the fit at
// the new (FLOPs, bytes).
//
// New-GPU support follows Li's Model: the fitted coefficients are rescaled
// by the ratio of the devices' peak compute throughput (a), memory bandwidth
// (b), and launch overhead (c), letting a trace from one GPU predict another.
package perfmodel

import (
	"fmt"
	"math"
	"sort"

	"triosim/internal/gpu"
	"triosim/internal/sim"
	"triosim/internal/trace"
)

// coeff is one operator type's fitted line.
type coeff struct {
	a, b, c float64 // time = a·flops + b·bytes + c
	// fallback statistics for degenerate fits.
	meanTime  float64
	meanFLOPs float64
	meanBytes float64
	samples   int
	usable    bool // least-squares fit succeeded
	// fitted feature range, for extrapolation-distance checks.
	minFLOPs, maxFLOPs float64
}

// Model is a fitted per-operator-type regression model. Fitted models are
// cached and shared across concurrent scenarios (tracecache timer entries),
// so they are frozen after Fit returns.
//
//triosim:immutable
type Model struct {
	Device string
	coeffs map[string]*coeff
	// rescaled marks a model derived for a different GPU than the trace was
	// collected on; its predictions must always come from the (rescaled)
	// regression — replaying trace times verbatim would reproduce the wrong
	// device's speed.
	rescaled bool
}

// sample is one (FLOPs, bytes, time) observation.
type sample struct{ f, b, t float64 }

// Fit trains the model from a stamped single-GPU trace.
func Fit(tr *trace.Trace) (*Model, error) {
	byOp := map[string][]sample{}
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Time.AtOrBefore(0) {
			return nil, fmt.Errorf("perfmodel: op %d (%s) has no measured time",
				i, op.Name)
		}
		bytes := float64(op.BytesIn(tr.Tensors) + op.BytesOut(tr.Tensors))
		byOp[op.Name] = append(byOp[op.Name],
			sample{op.FLOPs, bytes, float64(op.Time)})
	}
	m := &Model{Device: tr.Device, coeffs: map[string]*coeff{}}
	for name, ss := range byOp {
		c := &coeff{samples: len(ss), minFLOPs: math.Inf(1)}
		for _, s := range ss {
			c.meanTime += s.t
			c.meanFLOPs += s.f
			c.meanBytes += s.b
			if s.f < c.minFLOPs {
				c.minFLOPs = s.f
			}
			if s.f > c.maxFLOPs {
				c.maxFLOPs = s.f
			}
		}
		n := float64(len(ss))
		c.meanTime /= n
		c.meanFLOPs /= n
		c.meanBytes /= n

		if a, b, cc, ok := leastSquares(ss); ok {
			c.a, c.b, c.c, c.usable = a, b, cc, true
		}
		m.coeffs[name] = c
	}
	return m, nil
}

// leastSquares solves the ridge-regularized normal equations for
// t = a·f + b·b + c. Returns ok=false if the system is hopeless.
func leastSquares(ss []sample) (a, bb, c float64, ok bool) {
	// Normalize features for conditioning.
	var fScale, bScale float64
	for _, s := range ss {
		if s.f > fScale {
			fScale = s.f
		}
		if s.b > bScale {
			bScale = s.b
		}
	}
	if fScale == 0 {
		fScale = 1
	}
	if bScale == 0 {
		bScale = 1
	}

	var m [3][3]float64
	var v [3]float64
	for _, s := range ss {
		x := [3]float64{s.f / fScale, s.b / bScale, 1}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += x[i] * x[j]
			}
			v[i] += x[i] * s.t
		}
	}
	// Ridge: nudges unidentifiable directions toward zero coefficients.
	lambda := 1e-9 * float64(len(ss))
	for i := 0; i < 3; i++ {
		m[i][i] += lambda
	}
	sol, ok := solve3(m, v)
	if !ok {
		return 0, 0, 0, false
	}
	a = sol[0] / fScale
	bb = sol[1] / bScale
	c = sol[2]
	if math.IsNaN(a) || math.IsNaN(bb) || math.IsNaN(c) {
		return 0, 0, 0, false
	}
	// A fit dominated by a negative slope is unusable for extrapolation.
	if a < 0 && bb < 0 {
		return 0, 0, 0, false
	}
	return a, bb, c, true
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(m [3][3]float64, v [3]float64) ([3]float64, bool) {
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-300 {
			return [3]float64{}, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		v[col], v[pivot] = v[pivot], v[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			k := m[r][col] / m[col][col]
			for cc := col; cc < 3; cc++ {
				m[r][cc] -= k * m[col][cc]
			}
			v[r] -= k * v[col]
		}
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = v[i] / m[i][i]
	}
	return out, true
}

// Predict estimates the execution time of an operator of type name with the
// given work. Unknown operator types fall back to a roofline-free
// proportional estimate over all known ops.
func (m *Model) Predict(name string, flops, bytes float64) sim.VTime {
	c := m.coeffs[name]
	if c == nil {
		// Unknown op: proportional to the closest global scale we have.
		// Accumulate in sorted-key order: float addition is not associative,
		// so map order would leak into the prediction (map-range-order).
		names := make([]string, 0, len(m.coeffs))
		for n := range m.coeffs {
			names = append(names, n)
		}
		sort.Strings(names)
		var t float64
		for _, n := range names {
			t += m.coeffs[n].meanTime
		}
		if len(m.coeffs) > 0 {
			t /= float64(len(m.coeffs))
		}
		return sim.VTime(math.Max(t, 1e-9))
	}
	if c.usable {
		t := c.a*flops + c.b*bytes + c.c
		if t < 1e-9 {
			t = 1e-9
		}
		return sim.VTime(t)
	}
	// Degenerate fit: scale the mean observed time by the dominant ratio.
	ratio := 1.0
	switch {
	case c.meanFLOPs > 0 && flops > 0:
		ratio = flops / c.meanFLOPs
	case c.meanBytes > 0 && bytes > 0:
		ratio = bytes / c.meanBytes
	}
	t := c.meanTime * ratio
	if t < 1e-9 {
		t = 1e-9
	}
	return sim.VTime(t)
}

// OpTime implements the extrapolator's OpTimer contract: replay the traced
// time when the operator is unmodified on the traced device, predict when
// it was resized or the model targets a different GPU.
func (m *Model) OpTime(name string, flops, bytes float64,
	traceTime sim.VTime, scaled bool) sim.VTime {
	if !scaled && traceTime.After(0) && !m.rescaled {
		return traceTime
	}
	return m.Predict(name, flops, bytes)
}

// Rescale derives a model for a different GPU by scaling the coefficients by
// the devices' capability ratios (Li's Model's new-GPU support): compute
// slope by peak-FLOPS ratio, byte slope by memory-bandwidth ratio, intercept
// by launch-overhead ratio.
func (m *Model) Rescale(from, to *gpu.Spec) *Model {
	ka := (from.PeakFLOPS * from.UtilMax) / (to.PeakFLOPS * to.UtilMax)
	kb := (from.MemBandwidth * from.MemEff) / (to.MemBandwidth * to.MemEff)
	kc := float64(to.LaunchOverhead) / float64(from.LaunchOverhead)
	out := &Model{Device: to.Name, coeffs: map[string]*coeff{}, rescaled: true}
	for name, c := range m.coeffs {
		nc := *c
		nc.a = c.a * ka
		nc.b = c.b * kb
		nc.c = c.c * kc
		// Fallback statistics: dominant path scales like the slopes.
		nc.meanTime = c.meanTime * 0.5 * (ka + kb)
		out.coeffs[name] = &nc
	}
	return out
}

// Ops returns the number of operator types the model covers.
func (m *Model) Ops() int { return len(m.coeffs) }

// MeanAbsErrOnTrace evaluates the model against the trace it (or another
// trace) was measured on: mean |pred-actual|/actual across ops. A fitting
// diagnostic used by tests and the Fig 6 experiment.
func (m *Model) MeanAbsErrOnTrace(tr *trace.Trace) float64 {
	var sum float64
	var n int
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Time.AtOrBefore(0) {
			continue
		}
		bytes := float64(op.BytesIn(tr.Tensors) + op.BytesOut(tr.Tensors))
		pred := m.Predict(op.Name, op.FLOPs, bytes)
		sum += math.Abs(float64(pred-op.Time)) / float64(op.Time)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
