package perfmodel

import (
	"fmt"
	"math"

	"triosim/internal/sim"
	"triosim/internal/trace"
)

// RooflineModel is the alternative compute model the paper's §8.2 points at
// (NeuSight-style): instead of one regression per operator *type*, it fits
// device-level parameters — achieved compute throughput P, achieved memory
// bandwidth W, and a fixed per-kernel overhead c — pooled over *every*
// operator in the trace, and predicts
//
//	time ≈ max(FLOPs/P, bytes/W) + c.
//
// Pooling is the point: an operator type that appears at only one size
// (every matmul in a 12-layer transformer is identical) gives Li's Model
// nothing to fit a slope from, while the roofline transfers scaling
// information across types. The cost is per-type bias. HybridModel picks
// per type. Like Model, fitted rooflines are cached and shared read-only.
//
//triosim:immutable
type RooflineModel struct {
	Device string
	// P is achieved FLOP/s, W achieved bytes/s, C per-kernel overhead (s).
	P, W float64
	C    float64
}

// FitRoofline estimates (P, W, C) from a stamped trace by alternating
// classification (is a sample compute- or memory-bound under the current
// parameters?) and per-class least squares.
func FitRoofline(tr *trace.Trace) (*RooflineModel, error) {
	var samples []sample
	minT := math.Inf(1)
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Time.AtOrBefore(0) {
			return nil, fmt.Errorf("perfmodel: op %d (%s) has no measured time",
				i, op.Name)
		}
		b := float64(op.BytesIn(tr.Tensors) + op.BytesOut(tr.Tensors))
		samples = append(samples, sample{op.FLOPs, b, float64(op.Time)})
		if float64(op.Time) < minT {
			minT = float64(op.Time)
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("perfmodel: empty trace")
	}

	m := &RooflineModel{Device: tr.Device, C: minT / 2}
	// Initialization: pooled ratios.
	var sumF, sumB, sumT float64
	for _, s := range samples {
		sumF += s.f
		sumB += s.b
		sumT += s.t
	}
	m.P = sumF / sumT
	m.W = sumB / sumT
	if m.P <= 0 {
		m.P = 1e12
	}
	if m.W <= 0 {
		m.W = 1e11
	}

	for iter := 0; iter < 30; iter++ {
		// Classify each sample by its dominant roofline term.
		var cf, cb []sample
		for _, s := range samples {
			if s.f/m.P >= s.b/m.W {
				cf = append(cf, s)
			} else {
				cb = append(cb, s)
			}
		}
		// Least squares of (t − C) ≈ x/θ per class: 1/θ = Σx(t−C)/Σx².
		refit := func(ss []sample, feature func(sample) float64,
			old float64) float64 {
			var num, den float64
			for _, s := range ss {
				x := feature(s)
				num += x * (s.t - m.C)
				den += x * x
			}
			if den <= 0 || num <= 0 {
				return old
			}
			return den / num
		}
		newP := refit(cf, func(s sample) float64 { return s.f }, m.P)
		newW := refit(cb, func(s sample) float64 { return s.b }, m.W)
		// Overhead: mean positive residual floor.
		var resid float64
		for _, s := range samples {
			pred := math.Max(s.f/newP, s.b/newW)
			r := s.t - pred
			if r < 0 {
				r = 0
			}
			resid += r
		}
		newC := resid / float64(len(samples))
		if newC > minT {
			newC = minT
		}
		done := math.Abs(newP-m.P)/m.P < 1e-9 &&
			math.Abs(newW-m.W)/m.W < 1e-9
		m.P, m.W, m.C = newP, newW, newC
		if done {
			break
		}
	}
	return m, nil
}

// Predict evaluates the roofline at the given work.
func (m *RooflineModel) Predict(flops, bytes float64) sim.VTime {
	t := math.Max(flops/m.P, bytes/m.W) + m.C
	if t < 1e-9 {
		t = 1e-9
	}
	return sim.VTime(t)
}

// OpTime implements the extrapolator's OpTimer contract.
func (m *RooflineModel) OpTime(name string, flops, bytes float64,
	traceTime sim.VTime, scaled bool) sim.VTime {
	if !scaled && traceTime.After(0) {
		return traceTime
	}
	return m.Predict(flops, bytes)
}

// HybridModel predicts with Li's Model where the per-type fit had enough
// size diversity to be trustworthy, and with the pooled roofline otherwise
// — the integration mode §8.2 describes ("TrioSim allows the integration of
// alternative compute models ... offering users the flexibility to refine
// predictions"). Like its components, a fitted hybrid is shared read-only.
//
//triosim:immutable
type HybridModel struct {
	Li       *Model
	Roofline *RooflineModel
}

// FitHybrid trains both component models.
func FitHybrid(tr *trace.Trace) (*HybridModel, error) {
	li, err := Fit(tr)
	if err != nil {
		return nil, err
	}
	rf, err := FitRoofline(tr)
	if err != nil {
		return nil, err
	}
	return &HybridModel{Li: li, Roofline: rf}, nil
}

// diverse reports whether the op type's samples spanned enough sizes for a
// slope to be identified (≥3 samples is the regression's comfort zone).
func (h *HybridModel) diverse(name string) bool {
	c := h.Li.coeffs[name]
	return c != nil && c.usable && c.samples >= 3
}

// inRange reports whether the query sits inside (a modest margin around)
// the sizes the per-type fit actually saw. Outside it, the regression is
// extrapolating — the failure mode the roofline covers.
func (h *HybridModel) inRange(name string, flops float64) bool {
	c := h.Li.coeffs[name]
	if c == nil {
		return false
	}
	return flops >= c.minFLOPs/2 && flops <= c.maxFLOPs*2
}

// Predict routes per operator type and query size: Li's regression where it
// interpolates over a size-diverse fit, the pooled roofline where it would
// extrapolate (shrunken shards, unseen op types).
func (h *HybridModel) Predict(name string, flops, bytes float64) sim.VTime {
	if h.diverse(name) && h.inRange(name, flops) {
		return h.Li.Predict(name, flops, bytes)
	}
	return h.Roofline.Predict(flops, bytes)
}

// OpTime implements the extrapolator's OpTimer contract.
func (h *HybridModel) OpTime(name string, flops, bytes float64,
	traceTime sim.VTime, scaled bool) sim.VTime {
	if !scaled && traceTime.After(0) && !h.Li.rescaled {
		return traceTime
	}
	return h.Predict(name, flops, bytes)
}
