package perfmodel

import (
	"math"
	"testing"

	"triosim/internal/gpu"
	"triosim/internal/hwsim"
	"triosim/internal/sim"
	"triosim/internal/tensor"
	"triosim/internal/trace"
)

// syntheticTrace builds a trace whose op times follow a known exact line
// t = a·f + b·bytes + c, to verify the regression recovers it.
func syntheticTrace(a, b, c float64) *trace.Trace {
	tr := trace.New("synth", "A100", 1)
	for i := 1; i <= 10; i++ {
		// Quadratic element growth keeps bytes non-collinear with FLOPs so
		// the slopes are identifiable.
		elems := int64(i * i * 500)
		in := tr.Tensors.Add(tensor.Tensor{
			Dims: []int64{elems}, DType: tensor.Float32,
			Category: tensor.Activation, BatchDim: 0,
		})
		out := tr.Tensors.Add(tensor.Tensor{
			Dims: []int64{elems}, DType: tensor.Float32,
			Category: tensor.Activation, BatchDim: 0,
		})
		flops := float64(i) * 1e9
		bytes := float64(2 * elems * 4)
		tr.Append(trace.Op{
			Name: "conv2d", Phase: trace.Forward,
			FLOPs:   flops,
			Time:    sim.VTime(a*flops + b*bytes + c),
			Inputs:  []tensor.ID{in},
			Outputs: []tensor.ID{out},
		})
	}
	return tr
}

func TestFitRecoversExactLine(t *testing.T) {
	a, b, c := 2e-12, 5e-10, 3e-6
	tr := syntheticTrace(a, b, c)
	m, err := Fit(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Predict an unseen size.
	flops, bytes := 25e9, 4e5
	want := a*flops + b*bytes + c
	got := float64(m.Predict("conv2d", flops, bytes))
	if math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("Predict = %g, want %g", got, want)
	}
	if m.MeanAbsErrOnTrace(tr) > 1e-3 {
		t.Fatalf("in-sample error %g too high", m.MeanAbsErrOnTrace(tr))
	}
}

func TestFitRejectsUnstampedTrace(t *testing.T) {
	tr := trace.New("x", "A100", 1)
	in := tr.Tensors.Add(tensor.Tensor{Dims: []int64{4},
		DType: tensor.Float32, Category: tensor.Activation})
	tr.Append(trace.Op{Name: "relu", FLOPs: 1,
		Inputs: []tensor.ID{in}, Outputs: []tensor.ID{in}})
	if _, err := Fit(tr); err == nil {
		t.Fatal("unstamped trace accepted")
	}
}

func TestPredictPositive(t *testing.T) {
	tr := syntheticTrace(1e-12, 1e-10, 1e-6)
	m, _ := Fit(tr)
	if m.Predict("conv2d", 0, 0) <= 0 {
		t.Fatal("prediction must be positive")
	}
	if m.Predict("never-seen-op", 1e9, 1e6) <= 0 {
		t.Fatal("unknown-op prediction must be positive")
	}
}

func TestSingleSampleFallback(t *testing.T) {
	// An op type appearing once (e.g., the avgpool head) cannot support a
	// 3-parameter fit; prediction must still scale sensibly.
	tr := trace.New("x", "A100", 1)
	in := tr.Tensors.Add(tensor.Tensor{Dims: []int64{1000},
		DType: tensor.Float32, Category: tensor.Activation})
	tr.Append(trace.Op{Name: "avgpool", Phase: trace.Forward,
		FLOPs: 1e6, Time: 1e-4,
		Inputs: []tensor.ID{in}, Outputs: []tensor.ID{in}})
	m, err := Fit(tr)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Predict("avgpool", 1e6, 8000)
	double := m.Predict("avgpool", 2e6, 16000)
	r := float64(double) / float64(base)
	if r < 1.2 || r > 2.5 {
		t.Fatalf("single-sample scaling ratio %.3f implausible", r)
	}
}

func TestFitOnRealTrace(t *testing.T) {
	// Fit on an hwsim-stamped ResNet-50 trace: in-sample error should be
	// small (the hardware curve is near-linear over each op type's range).
	tr, err := hwsim.CollectTrace("resnet50", 64, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MeanAbsErrOnTrace(tr); got > 0.10 {
		t.Fatalf("in-sample mean abs error %.1f%% too high", got*100)
	}
}

func TestBatchExtrapolation(t *testing.T) {
	// The paper's Fig 6 setting: fit at batch 128, predict batch 256 — the
	// whole-iteration prediction should land within a few percent of
	// hardware.
	tr128, err := hwsim.CollectTrace("resnet18", 128, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(tr128)
	if err != nil {
		t.Fatal(err)
	}
	tr256, err := hwsim.CollectTrace("resnet18", 256, &gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	var pred, actual float64
	for i := range tr256.Ops {
		op := &tr256.Ops[i]
		bytes := float64(op.BytesIn(tr256.Tensors) +
			op.BytesOut(tr256.Tensors))
		pred += float64(m.Predict(op.Name, op.FLOPs, bytes))
		actual += float64(op.Time)
	}
	relErr := math.Abs(pred-actual) / actual
	if relErr > 0.08 {
		t.Fatalf("batch 128→256 error %.1f%%, want < 8%%", relErr*100)
	}
}

func TestRescaleToNewGPU(t *testing.T) {
	// Fit on A40, rescale to H100: predictions should approximate a model
	// fit directly on H100 within Li's Model's published ~15% band.
	trA40, err := hwsim.CollectTrace("resnet50", 64, &gpu.A40)
	if err != nil {
		t.Fatal(err)
	}
	mA40, err := Fit(trA40)
	if err != nil {
		t.Fatal(err)
	}
	mCross := mA40.Rescale(&gpu.A40, &gpu.H100)
	if mCross.Device != "H100" {
		t.Fatalf("rescaled device = %q", mCross.Device)
	}

	trH100, err := hwsim.CollectTrace("resnet50", 64, &gpu.H100)
	if err != nil {
		t.Fatal(err)
	}
	var pred, actual float64
	for i := range trH100.Ops {
		op := &trH100.Ops[i]
		bytes := float64(op.BytesIn(trH100.Tensors) +
			op.BytesOut(trH100.Tensors))
		pred += float64(mCross.Predict(op.Name, op.FLOPs, bytes))
		actual += float64(op.Time)
	}
	relErr := math.Abs(pred-actual) / actual
	if relErr > 0.25 {
		t.Fatalf("cross-GPU error %.1f%%, want < 25%%", relErr*100)
	}
	if relErr < 0.001 {
		t.Fatalf("cross-GPU error %.3f%% suspiciously perfect", relErr*100)
	}
}

func TestOpTimePassthrough(t *testing.T) {
	tr := syntheticTrace(1e-12, 1e-10, 1e-6)
	m, _ := Fit(tr)
	// Unscaled: returns the trace time verbatim.
	if got := m.OpTime("conv2d", 1e9, 1e6, 42*sim.USec, false); got != 42*sim.USec {
		t.Fatalf("passthrough = %v", got)
	}
	// Scaled: uses the regression.
	got := m.OpTime("conv2d", 1e9, 1e6, 42*sim.USec, true)
	if got == 42*sim.USec {
		t.Fatal("scaled op should not pass through")
	}
	if got <= 0 {
		t.Fatal("scaled prediction must be positive")
	}
}

func TestOps(t *testing.T) {
	tr := syntheticTrace(1e-12, 1e-10, 1e-6)
	m, _ := Fit(tr)
	if m.Ops() != 1 {
		t.Fatalf("Ops = %d", m.Ops())
	}
}
