package sweep

import (
	"context"
	"fmt"
	"path/filepath"

	"triosim/internal/core"
	"triosim/internal/tracecache"
)

// SanitizeName maps a scenario name onto a safe filename stem: every byte
// outside [a-zA-Z0-9._-] becomes '-'.
func SanitizeName(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			out[i] = '-'
		}
	}
	return string(out)
}

// Scenario is one named simulation configuration in a sweep.
type Scenario struct {
	// Name labels the scenario in results and reports.
	Name string
	// Build returns the scenario's Config. It runs on the worker goroutine,
	// so anything with unsynchronized internal state — notably
	// *network.Topology and its route cache — must be constructed here, not
	// captured from outside.
	Build func() core.Config
}

// SimResult is one scenario's simulation outcome.
type SimResult struct {
	Name string
	Res  *core.Result
}

// Simulate runs the scenarios through core.Simulate on the pool. Results are
// in scenario order; a scenario's failure is confined to its own Result. The
// sweep context (and per-job timeout) is threaded into each Config.Context,
// so cancellation terminates in-flight engines. When telemetry is enabled on
// a scenario's Config, its Result carries that scenario's own RunReport —
// each run builds a private registry, so reports never mix across workers.
//
// Unless Options.NoTraceCache is set, the sweep shares one trace cache:
// scenarios over the same (model, trace batch, GPU) collect the trace and
// fit the performance model once, and every other scenario reuses them
// read-only. A Config that already carries a Cache (or a pre-built Trace)
// keeps it.
func Simulate(opts Options, scenarios []Scenario) []Result[SimResult] {
	var cache *tracecache.Store
	if !opts.NoTraceCache {
		cache = tracecache.New()
	}
	jobs := make([]Job[SimResult], len(scenarios))
	for i := range scenarios {
		sc := scenarios[i]
		jobs[i] = func(ctx context.Context) (SimResult, error) {
			cfg := sc.Build()
			if cfg.Context == nil {
				cfg.Context = ctx
			}
			if cfg.Cache == nil {
				cfg.Cache = cache
			}
			if opts.TraceDir != "" {
				cfg.SpanTrace = true
			}
			res, err := core.Simulate(cfg)
			if err != nil {
				// Name the scenario: a per-scenario timeout surfaces from
				// core as a bare context error, useless in a 50-scenario
				// sweep without saying *which* scenario it killed.
				return SimResult{Name: sc.Name},
					fmt.Errorf("sweep: scenario %q: %w", sc.Name, err)
			}
			if opts.TraceDir != "" && res.Spans != nil {
				path := filepath.Join(opts.TraceDir,
					SanitizeName(sc.Name)+".trace.json")
				if err := res.Spans.WriteChromeTraceFile(path); err != nil {
					return SimResult{Name: sc.Name},
						fmt.Errorf("sweep: scenario %q: write trace: %w",
							sc.Name, err)
				}
			}
			return SimResult{Name: sc.Name, Res: res}, nil
		}
	}
	return Run(opts, jobs)
}
