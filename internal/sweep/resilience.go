package sweep

import (
	"context"
	"fmt"

	"triosim/internal/faults"
	"triosim/internal/sim"
)

// IntervalPoint is one checkpoint-interval candidate's resilience outcome.
type IntervalPoint struct {
	Interval sim.VTime
	Res      *faults.ResilienceResult
}

// Intervals evaluates the checkpoint/restart overlay at each candidate
// checkpoint interval on the worker pool — the Young–Daly optimal-interval
// study: hold the workload, failure schedule, and costs fixed (base) and
// sweep Interval. Results come back in candidate order; each evaluation is
// pure arithmetic over materialized failure times, so the sweep is
// byte-identical at any worker count.
func Intervals(opts Options, base faults.ResilienceConfig,
	candidates []sim.VTime) []Result[IntervalPoint] {

	jobs := make([]Job[IntervalPoint], len(candidates))
	for i := range candidates {
		iv := candidates[i]
		jobs[i] = func(ctx context.Context) (IntervalPoint, error) {
			cfg := base
			cfg.Interval = iv
			r, err := faults.Evaluate(cfg)
			if err != nil {
				return IntervalPoint{Interval: iv},
					fmt.Errorf("sweep: interval %v: %w", iv, err)
			}
			return IntervalPoint{Interval: iv, Res: r}, nil
		}
	}
	return Run(opts, jobs)
}

// BestInterval returns the candidate with the highest goodput (first wins
// on ties). Any failed evaluation fails the pick.
func BestInterval(results []Result[IntervalPoint]) (IntervalPoint, error) {
	var best IntervalPoint
	for _, r := range results {
		if r.Err != nil {
			return IntervalPoint{}, r.Err
		}
		if best.Res == nil || r.Value.Res.Goodput > best.Res.Goodput {
			best = r.Value
		}
	}
	if best.Res == nil {
		return IntervalPoint{}, fmt.Errorf("sweep: no interval candidates")
	}
	return best, nil
}
