package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"triosim/internal/core"
	"triosim/internal/gpu"
)

func quickScenario(name string, par core.Parallelism) Scenario {
	return Scenario{
		Name: name,
		Build: func() core.Config {
			p := gpu.P2
			return core.Config{
				Model: "resnet18", Platform: &p, Parallelism: par,
				TraceBatch: 32, MicroBatches: 2,
			}
		},
	}
}

// The parallel sweep must be bit-identical to the serial one: same
// per-scenario event digests, same simulated times, same order.
func TestSimulateParallelMatchesSerial(t *testing.T) {
	scs := []Scenario{
		quickScenario("dp", core.DP),
		quickScenario("ddp", core.DDP),
		quickScenario("tp", core.TP),
		quickScenario("pp", core.PP),
	}
	serial := Simulate(Options{Workers: 1}, scs)
	parallel := Simulate(Options{Workers: 8}, scs)
	if err := FirstErr(serial); err != nil {
		t.Fatal(err)
	}
	if err := FirstErr(parallel); err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		s, p := serial[i].Value, parallel[i].Value
		if s.Name != scs[i].Name || p.Name != scs[i].Name {
			t.Fatalf("order broken at %d: %q vs %q", i, s.Name, p.Name)
		}
		if s.Res.EventDigest != p.Res.EventDigest {
			t.Fatalf("%s: digest differs serial=%x parallel=%x",
				s.Name, s.Res.EventDigest, p.Res.EventDigest)
		}
		if s.Res.TotalTime != p.Res.TotalTime {
			t.Fatalf("%s: time differs serial=%v parallel=%v",
				s.Name, s.Res.TotalTime, p.Res.TotalTime)
		}
	}
}

// Telemetry-enabled scenarios get private RunReports: each result carries
// its own report with that scenario's parallelism, even when runs share
// workers.
func TestSimulatePerScenarioReports(t *testing.T) {
	scs := make([]Scenario, 0, 4)
	for _, par := range []core.Parallelism{core.DP, core.DDP, core.TP, core.PP} {
		par := par
		scs = append(scs, Scenario{
			Name: string(par),
			Build: func() core.Config {
				p := gpu.P2
				return core.Config{
					Model: "resnet18", Platform: &p, Parallelism: par,
					TraceBatch: 32, MicroBatches: 2, Telemetry: true,
				}
			},
		})
	}
	res := Simulate(Options{Workers: 4}, scs)
	if err := FirstErr(res); err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		rep := r.Value.Res.Report
		if rep == nil {
			t.Fatalf("%s: no RunReport", scs[i].Name)
		}
		if rep.Parallelism != scs[i].Name {
			t.Fatalf("report %d: parallelism %q, want %q",
				i, rep.Parallelism, scs[i].Name)
		}
	}
}

// A pre-expired per-scenario timeout must cancel the simulation via
// core.Config.Context without touching sibling scenarios.
func TestSimulateTimeoutConfinedToScenario(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // scenario 1 gets an already-canceled context
	scs := []Scenario{
		quickScenario("ok-before", core.DP),
		{
			Name: "canceled",
			Build: func() core.Config {
				cfg := quickScenario("canceled", core.DP).Build()
				cfg.Context = ctx
				return cfg
			},
		},
		quickScenario("ok-after", core.TP),
	}
	res := Simulate(Options{Workers: 2}, scs)
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatalf("siblings failed: %v / %v", res[0].Err, res[2].Err)
	}
	if !errors.Is(res[1].Err, context.Canceled) {
		t.Fatalf("canceled scenario error = %v", res[1].Err)
	}
}

// A scenario that times out (or fails for any reason) must be identifiable
// from the error alone: a sweep of dozens of cells is undebuggable from a
// bare "context deadline exceeded", so Simulate wraps the scenario name in.
func TestScenarioErrorNamesScenario(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scs := []Scenario{{
		Name: "the-culprit",
		Build: func() core.Config {
			cfg := quickScenario("the-culprit", core.DP).Build()
			cfg.Context = ctx
			return cfg
		},
	}}
	res := Simulate(Options{Workers: 1}, scs)
	if res[0].Err == nil ||
		!strings.Contains(res[0].Err.Error(), "the-culprit") {
		t.Fatalf("error %v does not name the scenario", res[0].Err)
	}
	if !errors.Is(res[0].Err, context.Canceled) {
		t.Fatalf("wrapped cause lost: %v", res[0].Err)
	}
}

// A long simulation must be terminated by the per-job timeout through the
// engine's context poll (not just the pre-run check).
func TestSimulateTimeoutTerminatesEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	scs := []Scenario{{
		Name: "long",
		Build: func() core.Config {
			p := gpu.P2
			return core.Config{
				Model: "resnet18", Platform: &p, Parallelism: core.DDP,
				TraceBatch: 32, Iterations: 2000,
			}
		},
	}}
	start := time.Now()
	res := Simulate(Options{Workers: 1, Timeout: 100 * time.Millisecond}, scs)
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("error = %v (elapsed %v)", res[0].Err, time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
