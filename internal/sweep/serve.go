package sweep

import (
	"context"
	"fmt"
	"path/filepath"

	"triosim/internal/core"
)

// ServeScenario is one named serving configuration in a sweep.
type ServeScenario struct {
	Name string
	// Build returns the scenario's ServeConfig; like Scenario.Build it runs
	// on the worker goroutine, so topologies must be constructed inside it.
	Build func() core.ServeConfig
}

// ServeResult is one serving scenario's outcome.
type ServeResult struct {
	Name string
	Res  *core.ServeResult
}

// Serve runs serving scenarios through core.Serve on the pool, mirroring
// Simulate: results in scenario order, failures confined to their own
// Result, the sweep context threaded into each config, and TraceDir writing
// one Chrome trace per scenario. Serving runs collect no traces, so there
// is no shared cache to install.
func Serve(opts Options, scenarios []ServeScenario) []Result[ServeResult] {
	jobs := make([]Job[ServeResult], len(scenarios))
	for i := range scenarios {
		sc := scenarios[i]
		jobs[i] = func(ctx context.Context) (ServeResult, error) {
			cfg := sc.Build()
			if cfg.Context == nil {
				cfg.Context = ctx
			}
			if opts.TraceDir != "" {
				cfg.SpanTrace = true
			}
			res, err := core.Serve(cfg)
			if err != nil {
				return ServeResult{Name: sc.Name},
					fmt.Errorf("sweep: scenario %q: %w", sc.Name, err)
			}
			if opts.TraceDir != "" && res.Spans != nil {
				path := filepath.Join(opts.TraceDir,
					SanitizeName(sc.Name)+".trace.json")
				if err := res.Spans.WriteChromeTraceFile(path); err != nil {
					return ServeResult{Name: sc.Name},
						fmt.Errorf("sweep: scenario %q: write trace: %w",
							sc.Name, err)
				}
			}
			return ServeResult{Name: sc.Name, Res: res}, nil
		}
	}
	return Run(opts, jobs)
}
