package sweep

import (
	"testing"

	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/tracecache"
)

// cacheGrid is a sweep where every scenario shares the same (model, batch,
// GPU): the trace cache collects once and serves everything else.
func cacheGrid() []Scenario {
	var scs []Scenario
	for _, par := range []core.Parallelism{core.DP, core.DDP, core.TP,
		core.PP} {
		scs = append(scs, quickScenario(string(par), par))
	}
	return scs
}

// The trace cache must be invisible in the results: every scenario's event
// digest, event count, and simulated time are identical with the cache on
// (the default) and off.
func TestSimulateCacheOnOffIdentical(t *testing.T) {
	scs := cacheGrid()
	cached := Simulate(Options{Workers: 1}, scs)
	uncached := Simulate(Options{Workers: 1, NoTraceCache: true}, scs)
	if err := FirstErr(cached); err != nil {
		t.Fatal(err)
	}
	if err := FirstErr(uncached); err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		c, u := cached[i].Value.Res, uncached[i].Value.Res
		if c.EventDigest != u.EventDigest || c.Events != u.Events {
			t.Fatalf("%s: cache changed the schedule: cached %x/%d vs "+
				"uncached %x/%d", scs[i].Name, c.EventDigest, c.Events,
				u.EventDigest, u.Events)
		}
		if c.TotalTime != u.TotalTime {
			t.Fatalf("%s: cache changed the result: %v vs %v",
				scs[i].Name, c.TotalTime, u.TotalTime)
		}
	}
}

// A parallel sweep over one shared store must be race-free (this test is in
// the race-hammer leg of scripts/check.sh) and bit-identical to the serial
// cached run, with the cache actually taking hits.
func TestSimulateSharedCacheConcurrent(t *testing.T) {
	// Two rounds over the same grid so the second round is all warm hits.
	scs := append(cacheGrid(), cacheGrid()...)
	serial := Simulate(Options{Workers: 1}, scs)
	parallel := Simulate(Options{Workers: 8}, scs)
	if err := FirstErr(serial); err != nil {
		t.Fatal(err)
	}
	if err := FirstErr(parallel); err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		s, p := serial[i].Value.Res, parallel[i].Value.Res
		if s.EventDigest != p.EventDigest {
			t.Fatalf("%s: digest differs serial=%x parallel=%x",
				scs[i].Name, s.EventDigest, p.EventDigest)
		}
	}
}

// The sweep-owned store must actually dedupe: 8 scenarios over one workload
// leave exactly one trace in the cache and serve the rest as hits.
func TestSimulateCacheEffectiveness(t *testing.T) {
	cache := tracecache.New()
	scs := cacheGrid()
	for i := range scs {
		build := scs[i].Build
		scs[i].Build = func() core.Config {
			cfg := build()
			cfg.Cache = cache // pin the store so the test can read its stats
			return cfg
		}
	}
	res := Simulate(Options{Workers: 4}, scs)
	if err := FirstErr(res); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.TraceMisses != 1 || st.Traces != 1 {
		t.Fatalf("store holds %d traces from %d builds, want 1 from 1 "+
			"(scenarios share one workload)", st.Traces, st.TraceMisses)
	}
	if st.TraceHits == 0 {
		t.Fatal("no trace hits across a single-workload sweep")
	}
	if st.TimerMisses != 1 || st.TimerHits == 0 {
		t.Fatalf("timer cache: %d misses / %d hits, want 1 miss and >0 hits",
			st.TimerMisses, st.TimerHits)
	}
}

// A Config that already carries its own cache keeps it; the sweep only fills
// in the shared store when the scenario didn't bring one.
func TestSimulateKeepsExplicitCache(t *testing.T) {
	mine := tracecache.New()
	scs := []Scenario{{
		Name: "own-cache",
		Build: func() core.Config {
			p := gpu.P2
			return core.Config{
				Model: "resnet18", Platform: &p, Parallelism: core.DDP,
				TraceBatch: 32, Cache: mine,
			}
		},
	}}
	if err := FirstErr(Simulate(Options{Workers: 1}, scs)); err != nil {
		t.Fatal(err)
	}
	if st := mine.Stats(); st.TraceMisses == 0 {
		t.Fatal("explicit Config.Cache was not used by the sweep")
	}
}
