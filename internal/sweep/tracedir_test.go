package sweep

import (
	"os"
	"path/filepath"
	"testing"

	"triosim/internal/spantrace"
)

// TestSimulateTraceDir: with TraceDir set, each scenario enables span tracing
// and writes a valid, sanitized-name Chrome trace file; without it, no traces
// are recorded.
func TestSimulateTraceDir(t *testing.T) {
	dir := t.TempDir()
	scs := []Scenario{
		quickScenario("ddp", "ddp"),
		quickScenario("tp/odd name", "tp"), // '/' must not escape the dir
	}
	res := Simulate(Options{Workers: 2, TraceDir: dir}, scs)
	if err := FirstErr(res); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d trace files, want 2", len(entries))
	}
	for _, name := range []string{"ddp", "tp-odd-name"} {
		path := filepath.Join(dir, name+".trace.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing trace for %s: %v", name, err)
		}
		if err := spantrace.ValidateChromeTrace(data); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Digest identity vs a traceless sweep (tracing is observation-only).
	plain := Simulate(Options{Workers: 2}, scs)
	if err := FirstErr(plain); err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Value.Res.EventDigest != plain[i].Value.Res.EventDigest {
			t.Fatalf("%s: TraceDir perturbed the digest",
				res[i].Value.Name)
		}
	}
}

// TestSanitizeName pins the filename mapping.
func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ddp":           "ddp",
		"tp/odd name":   "tp-odd-name",
		"a.b_c-9":       "a.b_c-9",
		"weird:chars*?": "weird-chars--",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Fatalf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
