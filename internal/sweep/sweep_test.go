package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPreservesOrder(t *testing.T) {
	const n = 64
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i * i, nil }
	}
	for _, workers := range []int{1, 2, 7, 0} {
		res := Run(Options{Workers: workers}, jobs)
		if len(res) != n {
			t.Fatalf("workers=%d: got %d results", workers, len(res))
		}
		for i, r := range res {
			if r.Index != i || r.Err != nil || r.Value != i*i {
				t.Fatalf("workers=%d: result %d = %+v", workers, i, r)
			}
		}
	}
}

// One failing scenario must leave the other N-1 results intact and ordered —
// the pool may not tear down siblings or shift indices.
func TestErrorDoesNotPoisonSiblings(t *testing.T) {
	const n, bad = 32, 13
	boom := errors.New("boom")
	jobs := make([]Job[string], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (string, error) {
			if i == bad {
				return "", boom
			}
			return fmt.Sprintf("scenario-%d", i), nil
		}
	}
	res := Run(Options{Workers: 4}, jobs)
	for i, r := range res {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if i == bad {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("bad scenario error = %v", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value != fmt.Sprintf("scenario-%d", i) {
			t.Fatalf("sibling %d poisoned: %+v", i, r)
		}
	}
	if err := FirstErr(res); !errors.Is(err, boom) {
		t.Fatalf("FirstErr = %v", err)
	}
	if _, err := Values(res); !errors.Is(err, boom) {
		t.Fatalf("Values err = %v", err)
	}
}

func TestPanicIsolation(t *testing.T) {
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { panic("kaboom") },
		func(context.Context) (int, error) { return 3, nil },
	}
	res := Run(Options{Workers: 2}, jobs)
	if res[0].Err != nil || res[0].Value != 1 {
		t.Fatalf("result 0: %+v", res[0])
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %+v", res[1])
	}
	if res[2].Err != nil || res[2].Value != 3 {
		t.Fatalf("result 2: %+v", res[2])
	}
}

func TestValuesUnwraps(t *testing.T) {
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 10, nil },
		func(context.Context) (int, error) { return 20, nil },
	}
	vals, err := Values(Run(Options{}, jobs))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 10 || vals[1] != 20 {
		t.Fatalf("vals = %v", vals)
	}
}

// Cancellation mid-sweep: started jobs observe the canceled context, jobs
// that have not started fail fast without running.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var ran atomic.Int32
	jobs := make([]Job[int], 16)
	jobs[0] = func(jctx context.Context) (int, error) {
		close(started)
		<-jctx.Done()
		return 0, jctx.Err()
	}
	for i := 1; i < len(jobs); i++ {
		jobs[i] = func(jctx context.Context) (int, error) {
			ran.Add(1)
			<-jctx.Done()
			return 0, jctx.Err()
		}
	}
	go func() {
		<-started
		cancel()
	}()
	res := Run(Options{Workers: 2, Context: ctx}, jobs)
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("result %d unexpectedly succeeded", i)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d: %v", i, r.Err)
		}
	}
	// Worker 2 may have started one sibling before cancel; the rest must be
	// rejected without running.
	if got := ran.Load(); got > 2 {
		t.Fatalf("%d jobs ran after cancellation", got)
	}
}

// Pool hammer: many more blocking jobs than workers, all bounded by the
// per-job timeout. The sweep must terminate, keep order, and time out every
// job individually (no shared-deadline bleed between jobs).
func TestTimeoutHammersPool(t *testing.T) {
	const n = 64
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(jctx context.Context) (int, error) {
			<-jctx.Done() // park until the per-job timeout fires
			return i, jctx.Err()
		}
	}
	doneCh := make(chan []Result[int], 1)
	go func() {
		doneCh <- Run(Options{Workers: 8, Timeout: 5 * time.Millisecond}, jobs)
	}()
	select {
	case res := <-doneCh:
		for i, r := range res {
			if r.Index != i {
				t.Fatalf("result %d has index %d", i, r.Index)
			}
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Fatalf("result %d: %v", i, r.Err)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep deadlocked under timeout hammer")
	}
}

func TestEmptyJobs(t *testing.T) {
	if res := Run[int](Options{Workers: 4}, nil); len(res) != 0 {
		t.Fatalf("got %d results for empty sweep", len(res))
	}
}
