package sweep

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"triosim/internal/config"
	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/serving"
)

func simScenario(t *testing.T, name, model string) Scenario {
	t.Helper()
	return Scenario{Name: name, Build: func() core.Config {
		cfg, err := (&config.RunSpec{Model: model, Platform: "P1",
			Parallelism: "ddp", TraceBatch: 32, GlobalBatch: 64}).ToCore()
		if err != nil {
			t.Errorf("build %s: %v", name, err)
		}
		return cfg
	}}
}

func TestSimulateCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scenarios := []Scenario{
		simScenario(t, "a", "resnet18"),
		simScenario(t, "b", "resnet18"),
		simScenario(t, "c", "resnet18"),
	}
	results := Simulate(Options{Workers: 2, Context: ctx}, scenarios)
	if len(results) != len(scenarios) {
		t.Fatalf("%d results for %d scenarios", len(results), len(scenarios))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("scenario %d: %v, want context.Canceled", i, r.Err)
		}
		if !strings.Contains(r.Err.Error(), "not started") {
			t.Errorf("scenario %d error %q does not say not-started", i, r.Err)
		}
	}
}

// Canceling the sweep context while scenario 0 is mid-build must fail
// scenario 0 with the cancellation and fail-fast every queued scenario
// behind it without running them.
func TestSimulateCancelMidQueue(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	canceled := make(chan struct{})
	go func() {
		<-started
		cancel()
		close(canceled)
	}()

	var ran sync.Map
	mark := func(s Scenario) Scenario {
		build := s.Build
		s.Build = func() core.Config {
			ran.Store(s.Name, true)
			return build()
		}
		return s
	}
	first := simScenario(t, "first", "resnet18")
	firstBuild := first.Build
	first.Build = func() core.Config {
		close(started)
		<-canceled // hold the worker until the sweep ctx is canceled
		return firstBuild()
	}
	scenarios := []Scenario{
		first,
		mark(simScenario(t, "second", "resnet18")),
		mark(simScenario(t, "third", "resnet18")),
	}

	// Workers:1 serializes the queue, so scenarios 1 and 2 cannot have
	// started before scenario 0 observes the cancellation.
	results := Simulate(Options{Workers: 1, Context: ctx}, scenarios)
	if !errors.Is(results[0].Err, context.Canceled) ||
		!strings.Contains(results[0].Err.Error(), "simulation canceled") {
		t.Errorf("running scenario: %v, want simulation-canceled", results[0].Err)
	}
	for _, r := range results[1:] {
		if !errors.Is(r.Err, context.Canceled) ||
			!strings.Contains(r.Err.Error(), "not started") {
			t.Errorf("queued scenario %d: %v, want not-started cancellation",
				r.Index, r.Err)
		}
		if _, ok := ran.Load(scenarios[r.Index].Name); ok {
			t.Errorf("queued scenario %d ran after cancellation", r.Index)
		}
	}
}

// trippingCtx reports no error on its first Err() call (core's pre-run gate)
// and a cancellation on every later one, deterministically forcing the
// engine's mid-dispatch poll — not the pre-run check — to terminate the run.
type trippingCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
}

func (c *trippingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > 1 {
		return context.Canceled
	}
	return nil
}

func TestSimulateEngineTerminatesMidRun(t *testing.T) {
	// densenet121 dispatches >1024 events, so the engine's 1024-dispatch
	// cancellation poll is guaranteed to fire at least once.
	ctx := &trippingCtx{Context: context.Background()}
	results := Simulate(Options{Workers: 1, Context: ctx},
		[]Scenario{simScenario(t, "mid-run", "densenet121")})
	err := results[0].Err
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), `"mid-run"`) {
		t.Fatalf("error %q does not name the scenario", err)
	}
	ctx.mu.Lock()
	polls := ctx.calls
	ctx.mu.Unlock()
	if polls < 2 {
		t.Fatalf("engine never reached the dispatch poll (calls=%d)", polls)
	}
}

func TestSimulatePerJobTimeout(t *testing.T) {
	results := Simulate(Options{Workers: 1, Timeout: time.Nanosecond},
		[]Scenario{simScenario(t, "tiny-budget", "resnet18")})
	err := results[0].Err
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout: %v, want context.DeadlineExceeded", err)
	}
}

// A canceled sweep context wins over the per-job timeout: jobs are not even
// started, and the error says so.
func TestSimulateCancelBeatsTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Simulate(Options{Workers: 1, Timeout: time.Hour, Context: ctx},
		[]Scenario{simScenario(t, "moot", "resnet18")})
	err := results[0].Err
	if !errors.Is(err, context.Canceled) ||
		!strings.Contains(err.Error(), "not started") {
		t.Fatalf("cancel vs timeout: %v", err)
	}
}

func serveScenario(t *testing.T, name string) ServeScenario {
	t.Helper()
	return ServeScenario{Name: name, Build: func() core.ServeConfig {
		plat, err := gpu.PlatformByName("P1")
		if err != nil {
			t.Errorf("build %s: %v", name, err)
		}
		return core.ServeConfig{
			Platform: plat,
			Serving: serving.Config{
				Model: "gpt2",
				Arrivals: serving.ArrivalConfig{
					Requests: 8, Rate: 200, Seed: 7,
				},
			},
		}
	}}
}

func TestServeCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Serve(Options{Workers: 2, Context: ctx},
		[]ServeScenario{serveScenario(t, "a"), serveScenario(t, "b")})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("serve scenario %d: %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestServeCancelMidQueue(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	canceled := make(chan struct{})
	go func() {
		<-started
		cancel()
		close(canceled)
	}()
	first := serveScenario(t, "first")
	firstBuild := first.Build
	first.Build = func() core.ServeConfig {
		close(started)
		<-canceled
		return firstBuild()
	}
	results := Serve(Options{Workers: 1, Context: ctx},
		[]ServeScenario{first, serveScenario(t, "second")})
	if !errors.Is(results[0].Err, context.Canceled) ||
		!strings.Contains(results[0].Err.Error(), "simulation canceled") {
		t.Errorf("running serve scenario: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, context.Canceled) ||
		!strings.Contains(results[1].Err.Error(), "not started") {
		t.Errorf("queued serve scenario: %v", results[1].Err)
	}
}
