// Package sweep fans independent simulation scenarios across OS threads.
//
// TrioSim's determinism contract keeps every simulation single-goroutine: one
// SerialEngine, no locks, a byte-stable event schedule (see
// docs/STATIC_ANALYSIS.md). Design-space exploration, however, is throughput
// bound — a figure is dozens of independent scenarios — and those runs share
// nothing. This package is the only sanctioned parallelism in the repo: a
// worker pool where each job builds its own engine, network, and topology
// inside the job closure, so the no-goroutine-in-sim analyzer contract is
// untouched and per-scenario results are bit-identical to a serial run.
//
// Rules for job closures:
//   - Construct everything the simulation touches inside the closure. In
//     particular *network.Topology memoizes routes in an unsynchronized
//     cache, so topologies must never be shared across scenarios.
//   - Results are returned, not accumulated through shared state.
//
// Run preserves scenario order: result i is job i's outcome regardless of
// which worker ran it or when it finished.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Options configure a sweep.
type Options struct {
	// Workers is the pool size. 0 or negative means GOMAXPROCS(0); 1 runs
	// the jobs serially on the calling goroutine (no pool), which is useful
	// for golden-output comparisons against the parallel path.
	Workers int
	// Timeout bounds each job individually (0 = unbounded). The job's
	// context expires after this long, which for simulation jobs terminates
	// the engine (core.Config.Context).
	Timeout time.Duration
	// Context cancels the whole sweep: jobs not yet started return
	// ctx.Err() without running, and running jobs see their child context
	// canceled. Nil means context.Background().
	Context context.Context
	// NoTraceCache disables the shared trace cache Simulate installs by
	// default (scenarios with equal trace inputs reuse one collected trace
	// and fitted timer). Cache-on and cache-off sweeps produce byte-identical
	// results — the cache only skips redundant rebuilds — so this exists for
	// A/B measurement and debugging, not correctness.
	NoTraceCache bool
	// TraceDir, when non-empty, enables span tracing (core.Config.SpanTrace)
	// on every Simulate scenario and writes each scenario's Chrome
	// trace-event JSON to <TraceDir>/<scenario-name>.trace.json. The
	// directory must exist. Workers write disjoint files (one per scenario),
	// so no synchronization is needed.
	TraceDir string
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Job computes one scenario's value. The context carries sweep cancellation
// and the per-job timeout; simulation jobs should thread it into
// core.Config.Context.
type Job[T any] func(ctx context.Context) (T, error)

// Result is one job's outcome, tagged with its scenario index.
type Result[T any] struct {
	// Index is the job's position in the input slice; Run returns results
	// in ascending Index order.
	Index int
	Value T
	Err   error
}

// Run executes the jobs on a worker pool and returns one Result per job, in
// input order. A failing (or panicking) job only marks its own Result — the
// other jobs run to completion unaffected. Cancellation via Options.Context
// stops jobs that have not started; their results carry the context error.
func Run[T any](opts Options, jobs []Job[T]) []Result[T] {
	results := make([]Result[T], len(jobs))
	for i := range results {
		results[i].Index = i
	}
	if len(jobs) == 0 {
		return results
	}
	ctx := opts.context()

	if opts.workers() == 1 {
		for i, job := range jobs {
			results[i] = runOne(ctx, opts.Timeout, i, job)
		}
		return results
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	workers := opts.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Disjoint indices: each slot is written by exactly one
				// worker, so no lock is needed.
				results[i] = runOne(ctx, opts.Timeout, i, jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne executes a single job with panic isolation and the per-job timeout.
func runOne[T any](ctx context.Context, timeout time.Duration, i int,
	job Job[T]) (res Result[T]) {

	res.Index = i
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("sweep: scenario %d not started: %w", i, err)
		return res
	}
	jctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("sweep: scenario %d panicked: %v", i, r)
		}
	}()
	res.Value, res.Err = job(jctx)
	return res
}

// FirstErr returns the lowest-index error among the results, or nil. Use it
// when a sweep is all-or-nothing; inspect individual Results to tolerate
// partial failure.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Values unwraps the result values in scenario order, returning the first
// error if any job failed.
func Values[T any](results []Result[T]) ([]T, error) {
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]T, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, nil
}
