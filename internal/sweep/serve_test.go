package sweep

import (
	"strings"
	"testing"

	"triosim/internal/core"
	"triosim/internal/gpu"
	"triosim/internal/serving"
)

func serveScenarios() []ServeScenario {
	var scs []ServeScenario
	for _, sched := range serving.Policies() {
		sched := sched
		scs = append(scs, ServeScenario{
			Name: "gpt2-" + sched,
			Build: func() core.ServeConfig {
				p := gpu.P1
				return core.ServeConfig{
					Platform:  &p,
					Telemetry: true,
					Serving: serving.Config{
						Model:     "gpt2",
						Scheduler: sched,
						MaxBatch:  4,
						Arrivals: serving.ArrivalConfig{
							Seed: 5, Rate: 300, Requests: 32,
							PromptMin: 8, PromptMax: 48,
							OutputMin: 4, OutputMax: 16,
							PriorityLevels: 3,
						},
					},
				}
			},
		})
	}
	return scs
}

func TestServeParallelMatchesSerial(t *testing.T) {
	serial, err := Values(Serve(Options{Workers: 1}, serveScenarios()))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Values(Serve(Options{Workers: 8}, serveScenarios()))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%d serial vs %d parallel results",
			len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Name != p.Name {
			t.Fatalf("result %d: %q vs %q", i, s.Name, p.Name)
		}
		if s.Res.EventDigest != p.Res.EventDigest ||
			s.Res.Events != p.Res.Events {
			t.Fatalf("%s: serial %#x/%d vs parallel %#x/%d", s.Name,
				s.Res.EventDigest, s.Res.Events,
				p.Res.EventDigest, p.Res.Events)
		}
		if s.Res.Metrics.Latency != p.Res.Metrics.Latency {
			t.Fatalf("%s: latency stats diverge across pools", s.Name)
		}
	}
}

// TestServeConcurrentHammer runs repeated overlapping serving sweeps; under
// -race (the check.sh hammer leg) this guards the pool's result slots and
// the per-scenario isolation of engines and topologies.
func TestServeConcurrentHammer(t *testing.T) {
	for round := 0; round < 4; round++ {
		if err := FirstErr(Serve(Options{Workers: 6},
			serveScenarios())); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeErrorNamesScenario(t *testing.T) {
	res := Serve(Options{Workers: 1}, []ServeScenario{{
		Name: "broken",
		Build: func() core.ServeConfig {
			p := gpu.P1
			return core.ServeConfig{
				Platform: &p,
				Serving:  serving.Config{Model: "no-such-model"},
			}
		},
	}})
	err := FirstErr(res)
	if err == nil {
		t.Fatal("broken scenario succeeded")
	}
	if want := `scenario "broken"`; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the scenario", err)
	}
}
