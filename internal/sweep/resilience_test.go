package sweep

import (
	"testing"

	"triosim/internal/faults"
	"triosim/internal/sim"
)

func TestIntervalsAndBestInterval(t *testing.T) {
	base := faults.ResilienceConfig{
		Work:           100 * sim.Sec,
		CheckpointCost: sim.Sec,
		RestartCost:    sim.Sec,
		Failures:       []sim.VTime{30 * sim.Sec, 70 * sim.Sec},
	}
	candidates := []sim.VTime{50 * sim.Sec, 10 * sim.Sec, 5 * sim.Sec}
	res := Intervals(Options{Workers: 2}, base, candidates)
	if len(res) != len(candidates) {
		t.Fatalf("got %d results", len(res))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("interval %v: %v", candidates[i], r.Err)
		}
		if r.Value.Interval != candidates[i] {
			t.Fatalf("result %d out of order: %v", i, r.Value.Interval)
		}
		if g := r.Value.Res.Goodput; g <= 0 || g > 1 {
			t.Fatalf("interval %v goodput %g", candidates[i], g)
		}
	}
	best, err := BestInterval(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Value.Res.Goodput > best.Res.Goodput {
			t.Fatalf("best %v (%g) beaten by %v (%g)", best.Interval,
				best.Res.Goodput, r.Value.Interval, r.Value.Res.Goodput)
		}
	}

	if _, err := BestInterval(nil); err == nil {
		t.Fatal("empty candidate set accepted")
	}

	// An invalid overlay config surfaces as a per-interval error and
	// propagates out of BestInterval.
	bad := base
	bad.Work = -sim.Sec
	badRes := Intervals(Options{Workers: 1}, bad, candidates[:1])
	if badRes[0].Err == nil {
		t.Fatal("invalid overlay accepted")
	}
	if _, err := BestInterval(badRes); err == nil {
		t.Fatal("BestInterval swallowed the error")
	}
}
