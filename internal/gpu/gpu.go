// Package gpu defines the GPU device specifications and the validation
// platforms (P1, P2, P3) used throughout the paper's evaluation.
//
// The paper feeds *measured* (nccl-test achieved) link bandwidths into the
// simulator rather than theoretical peaks; the platform definitions below do
// the same with one fixed set of numbers per platform. The compute-side
// numbers (effective training FLOPS, memory bandwidth) parameterize both the
// reference hardware emulator (internal/hwsim) and Li's Model's cross-GPU
// rescaling (internal/perfmodel).
package gpu

import (
	"fmt"

	"triosim/internal/sim"
)

// Spec describes one GPU model.
type Spec struct {
	// Name is the marketing name, e.g. "A100".
	Name string
	// PeakFLOPS is the peak training throughput in FLOP/s (TF32/tensor-core
	// class for Ampere/Hopper parts).
	PeakFLOPS float64
	// MemBandwidth is the device memory bandwidth in bytes/s.
	MemBandwidth float64
	// MemCapacity is the device memory size in bytes.
	MemCapacity int64
	// UtilMax is the highest fraction of PeakFLOPS a large DNN kernel
	// achieves in practice.
	UtilMax float64
	// UtilHalfFLOPs is the kernel size (in FLOPs) at which achieved
	// utilization reaches half of UtilMax. Small kernels underutilize the
	// GPU; this knob shapes the utilization curve
	// u(f) = UtilMax * f / (f + UtilHalfFLOPs).
	UtilHalfFLOPs float64
	// MemEff is the fraction of MemBandwidth memory-bound kernels achieve.
	MemEff float64
	// LaunchOverhead is the per-kernel launch cost on real hardware. TrioSim
	// deliberately does not model it (paper §8.2, CPU overhead), so it is
	// one of the controlled error sources between the reference emulator
	// and TrioSim's prediction.
	LaunchOverhead sim.VTime
}

// Utilization returns the achieved fraction of peak FLOPS for a kernel of
// the given FLOPs.
func (s *Spec) Utilization(flops float64) float64 {
	if flops <= 0 {
		return s.UtilMax
	}
	return s.UtilMax * flops / (flops + s.UtilHalfFLOPs)
}

// Predefined GPU specs. Peak numbers follow public datasheets (TF32 class);
// utilization parameters are calibrated so the emulator's single-GPU
// iteration times land in realistic ranges for the paper's workloads.
var (
	A40 = Spec{
		Name:           "A40",
		PeakFLOPS:      74.8e12, // TF32 with structured reuse
		MemBandwidth:   696e9,
		MemCapacity:    48 << 30,
		UtilMax:        0.52,
		UtilHalfFLOPs:  2.5e9,
		MemEff:         0.72,
		LaunchOverhead: 6 * sim.USec,
	}
	A100 = Spec{
		Name:           "A100",
		PeakFLOPS:      156e12, // TF32
		MemBandwidth:   1935e9,
		MemCapacity:    80 << 30,
		UtilMax:        0.50,
		UtilHalfFLOPs:  5e9,
		MemEff:         0.75,
		LaunchOverhead: 5 * sim.USec,
	}
	H100 = Spec{
		Name:           "H100",
		PeakFLOPS:      400e12, // TF32 with higher clocks/occupancy
		MemBandwidth:   3350e9,
		MemCapacity:    80 << 30,
		UtilMax:        0.48,
		UtilHalfFLOPs:  9e9,
		MemEff:         0.78,
		LaunchOverhead: 4.5 * sim.USec,
	}
)

// SpecByName looks up a predefined spec.
func SpecByName(name string) (*Spec, error) {
	switch name {
	case "A40":
		s := A40
		return &s, nil
	case "A100":
		s := A100
		return &s, nil
	case "H100":
		s := H100
		return &s, nil
	}
	return nil, fmt.Errorf("gpu: unknown GPU spec %q", name)
}

// TopologyKind names the inter-GPU connection arrangement of a platform.
type TopologyKind string

// Supported platform topologies.
const (
	// TopoPCIeTree is a host root complex with GPUs as leaves (P1).
	TopoPCIeTree TopologyKind = "pcie-tree"
	// TopoNVSwitch is an any-to-any switch (P2, P3).
	TopoNVSwitch TopologyKind = "nvswitch"
	// TopoRing connects GPUs in a ring.
	TopoRing TopologyKind = "ring"
	// TopoMesh is a 2-D mesh (wafer-scale case study).
	TopoMesh TopologyKind = "mesh"
)

// Platform is a multi-GPU system configuration: GPUs plus interconnect.
type Platform struct {
	Name    string
	GPU     Spec
	NumGPUs int
	// Topology is the inter-GPU connection arrangement.
	Topology TopologyKind
	// LinkBandwidth is the measured achieved bandwidth per inter-GPU link,
	// bytes/s (the nccl-test number the paper feeds in).
	LinkBandwidth float64
	// LinkLatency is the one-way latency per inter-GPU hop.
	LinkLatency sim.VTime
	// HostBandwidth and HostLatency describe the CPU-to-GPU path used for
	// input-batch staging.
	HostBandwidth float64
	HostLatency   sim.VTime
	// CommStepLatency is the per-collective-step protocol latency the real
	// NCCL stack pays (ring setup, kernel launch per step). The reference
	// emulator charges it; TrioSim's lightweight network model does not
	// (paper §8.2, network model error source).
	CommStepLatency sim.VTime
	// CPUSchedOverhead is the host-side scheduling cost per micro-batch
	// stage in pipeline parallelism on real hardware.
	CPUSchedOverhead sim.VTime
	// CommRampBytes is the message-size scale at which real transfers reach
	// their allocated bandwidth (NCCL's size-dependent achieved busbw). The
	// reference hardware emulator applies it; TrioSim does not model it.
	CommRampBytes float64
}

// Predefined validation platforms matching the paper's §5.
var (
	// P1: 2 NVIDIA A40 GPUs connected with PCIe.
	P1 = Platform{
		Name:             "P1",
		GPU:              A40,
		NumGPUs:          2,
		Topology:         TopoPCIeTree,
		LinkBandwidth:    11e9, // achieved PCIe 4.0 x16 p2p
		LinkLatency:      3 * sim.USec,
		HostBandwidth:    12e9,
		HostLatency:      5 * sim.USec,
		CommStepLatency:  18 * sim.USec,
		CPUSchedOverhead: 900 * sim.USec,
		CommRampBytes:    3 << 20,
	}
	// P2: 4 NVIDIA A100 GPUs connected with NVLink.
	P2 = Platform{
		Name:             "P2",
		GPU:              A100,
		NumGPUs:          4,
		Topology:         TopoNVSwitch,
		LinkBandwidth:    235e9, // achieved NVLink3 busbw
		LinkLatency:      1.2 * sim.USec,
		HostBandwidth:    20e9,
		HostLatency:      5 * sim.USec,
		CommStepLatency:  10 * sim.USec,
		CPUSchedOverhead: 850 * sim.USec,
		CommRampBytes:    8 << 20,
	}
	// P3: 8 NVIDIA H100 GPUs connected with NVLink/NVSwitch.
	P3 = Platform{
		Name:             "P3",
		GPU:              H100,
		NumGPUs:          8,
		Topology:         TopoNVSwitch,
		LinkBandwidth:    350e9, // achieved NVLink4 busbw
		LinkLatency:      1.0 * sim.USec,
		HostBandwidth:    40e9,
		HostLatency:      4 * sim.USec,
		CommStepLatency:  8 * sim.USec,
		CPUSchedOverhead: 800 * sim.USec,
		CommRampBytes:    8 << 20,
	}
)

// PlatformByName looks up a predefined platform.
func PlatformByName(name string) (*Platform, error) {
	switch name {
	case "P1":
		p := P1
		return &p, nil
	case "P2":
		p := P2
		return &p, nil
	case "P3":
		p := P3
		return &p, nil
	}
	return nil, fmt.Errorf("gpu: unknown platform %q", name)
}

// WithGPUs returns a copy of the platform resized to n GPUs (used by the
// paper's 2-of-4 A100 pipeline experiments).
func (p Platform) WithGPUs(n int) Platform {
	p.NumGPUs = n
	return p
}

// Validate checks that the platform is runnable.
func (p *Platform) Validate() error {
	if p.NumGPUs < 1 {
		return fmt.Errorf("gpu: platform %s has %d GPUs", p.Name, p.NumGPUs)
	}
	if p.LinkBandwidth <= 0 && p.NumGPUs > 1 {
		return fmt.Errorf("gpu: platform %s has no link bandwidth", p.Name)
	}
	if p.HostBandwidth <= 0 {
		return fmt.Errorf("gpu: platform %s has no host bandwidth", p.Name)
	}
	if p.GPU.PeakFLOPS <= 0 || p.GPU.MemBandwidth <= 0 {
		return fmt.Errorf("gpu: platform %s GPU spec incomplete", p.Name)
	}
	return nil
}
