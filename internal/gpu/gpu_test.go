package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"A40", "A100", "H100"} {
		s, err := SpecByName(name)
		if err != nil {
			t.Fatalf("SpecByName(%s): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("spec name %q", s.Name)
		}
		if s.PeakFLOPS <= 0 || s.MemBandwidth <= 0 || s.MemCapacity <= 0 {
			t.Fatalf("%s spec incomplete: %+v", name, s)
		}
	}
	if _, err := SpecByName("TPU"); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestSpecOrdering(t *testing.T) {
	// Newer GPUs must be strictly faster in both compute and memory: the
	// new-GPU prediction experiment (Fig 11) depends on this ordering.
	if !(A40.PeakFLOPS < A100.PeakFLOPS && A100.PeakFLOPS < H100.PeakFLOPS) {
		t.Fatal("FLOPS ordering violated")
	}
	if !(A40.MemBandwidth < A100.MemBandwidth &&
		A100.MemBandwidth < H100.MemBandwidth) {
		t.Fatal("memory bandwidth ordering violated")
	}
}

func TestUtilizationCurve(t *testing.T) {
	s := A100
	if got := s.Utilization(0); got != s.UtilMax {
		t.Fatalf("Utilization(0) = %v", got)
	}
	half := s.Utilization(s.UtilHalfFLOPs)
	if diff := half - s.UtilMax/2; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("half-saturation point wrong: %v", half)
	}
	big := s.Utilization(1e15)
	if big <= s.Utilization(1e9) || big > s.UtilMax {
		t.Fatalf("utilization not monotone toward UtilMax: %v", big)
	}
}

func TestUtilizationMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		fa, fb := float64(a), float64(b)
		if fa > fb {
			fa, fb = fb, fa
		}
		ua, ub := A40.Utilization(fa*1e6), A40.Utilization(fb*1e6)
		return ua <= ub+1e-15 && ub <= A40.UtilMax+1e-15
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestPlatforms(t *testing.T) {
	for _, name := range []string{"P1", "P2", "P3"} {
		p, err := PlatformByName(name)
		if err != nil {
			t.Fatalf("PlatformByName(%s): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("platform %s invalid: %v", name, err)
		}
	}
	if _, err := PlatformByName("P9"); err == nil {
		t.Fatal("unknown platform accepted")
	}
	// Paper's platform shapes.
	p1, _ := PlatformByName("P1")
	if p1.NumGPUs != 2 || p1.GPU.Name != "A40" || p1.Topology != TopoPCIeTree {
		t.Fatalf("P1 misconfigured: %+v", p1)
	}
	p2, _ := PlatformByName("P2")
	if p2.NumGPUs != 4 || p2.GPU.Name != "A100" || p2.Topology != TopoNVSwitch {
		t.Fatalf("P2 misconfigured: %+v", p2)
	}
	p3, _ := PlatformByName("P3")
	if p3.NumGPUs != 8 || p3.GPU.Name != "H100" {
		t.Fatalf("P3 misconfigured: %+v", p3)
	}
	// NVLink platforms must have far higher link bandwidth than PCIe P1.
	if p2.LinkBandwidth < 10*p1.LinkBandwidth {
		t.Fatal("P2 NVLink should dwarf P1 PCIe bandwidth")
	}
}

func TestWithGPUs(t *testing.T) {
	p2, _ := PlatformByName("P2")
	half := p2.WithGPUs(2)
	if half.NumGPUs != 2 || p2.NumGPUs != 4 {
		t.Fatal("WithGPUs must copy, not mutate")
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	bad := P1
	bad.NumGPUs = 0
	if bad.Validate() == nil {
		t.Fatal("0 GPUs accepted")
	}
	bad = P1
	bad.LinkBandwidth = 0
	if bad.Validate() == nil {
		t.Fatal("0 link bandwidth accepted")
	}
	bad = P1
	bad.HostBandwidth = 0
	if bad.Validate() == nil {
		t.Fatal("0 host bandwidth accepted")
	}
	bad = P1
	bad.GPU.PeakFLOPS = 0
	if bad.Validate() == nil {
		t.Fatal("0 FLOPS accepted")
	}
	// Single GPU with no links is fine.
	single := P1.WithGPUs(1)
	single.LinkBandwidth = 0
	if err := single.Validate(); err != nil {
		t.Fatalf("single-GPU platform rejected: %v", err)
	}
}
