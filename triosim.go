// Package triosim is the public API of the TrioSim reproduction: a
// lightweight, trace-driven simulator for large-scale DNN training on
// multi-GPU systems (Li et al., ISCA 2025).
//
// TrioSim takes an operator-level trace collected on a single GPU and
// extrapolates it to a multi-GPU configuration under a chosen parallelism
// strategy (data, distributed-data, tensor, or pipeline parallelism),
// pricing computation with a linear-regression operator performance model
// (Li's Model) and communication with a flow-based network model.
//
// Quickstart:
//
//	platform := triosim.P2() // 4×A100, NVLink
//	res, err := triosim.Simulate(triosim.Config{
//		Model:       "resnet50",
//		Platform:    platform,
//		Parallelism: triosim.DDP,
//		TraceBatch:  128,
//	})
//	fmt.Println(res.PerIteration, res.CommTime, res.ComputeTime)
//
// The reproduction ships its own tracer substitute (an analytic model zoo
// stamped by a reference hardware emulator), so no GPU is needed; supply
// your own Trace to simulate measured workloads instead.
package triosim

import (
	"triosim/internal/core"
	"triosim/internal/faults"
	"triosim/internal/gpu"
	"triosim/internal/hwsim"
	"triosim/internal/models"
	"triosim/internal/network"
	"triosim/internal/serving"
	"triosim/internal/sim"
	"triosim/internal/telemetry"
	"triosim/internal/trace"
	"triosim/internal/tracecache"
)

// Config describes one simulation; see the field docs in internal/core.
type Config = core.Config

// Result is the simulator's output: total/per-iteration time, the
// communication/computation breakdown, the timeline, and the simulator's
// own wall-clock cost.
type Result = core.Result

// Comparison is a predicted-vs-hardware validation pair.
type Comparison = core.Comparison

// RunReport is the structured telemetry report produced when
// Config.Telemetry is enabled; see internal/telemetry and
// docs/OBSERVABILITY.md.
type RunReport = telemetry.RunReport

// MetricsRegistry is the deterministic virtual-time metrics registry. Share
// one between Config.Metrics and a monitor to serve live /metrics.
type MetricsRegistry = telemetry.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// Parallelism selects the training strategy.
type Parallelism = core.Parallelism

// Parallelism strategies.
const (
	SingleGPU = core.Single
	DP        = core.DP
	DDP       = core.DDP
	TP        = core.TP
	PP        = core.PP
	DPPP      = core.DPPP   // hybrid: data-parallel pipeline replicas
	DPTP      = core.DPTP   // hybrid: data-parallel tensor-parallel replicas
	DPTPPP    = core.DPTPPP // 3D: data × tensor × pipeline parallel grid
	ZeRO1     = core.ZeRO1  // ZeRO stage-1 optimizer-state sharding
)

// VTime is virtual time in seconds.
type VTime = sim.VTime

// Trace is an operator-level single-GPU execution trace.
type Trace = trace.Trace

// Platform describes a multi-GPU system (GPUs + interconnect).
type Platform = gpu.Platform

// Topology is an interconnect graph for custom network configurations.
type Topology = network.Topology

// Simulate predicts the multi-GPU execution time of the configured
// workload: TrioSim's main entry point.
func Simulate(cfg Config) (*Result, error) { return core.Simulate(cfg) }

// GroundTruth runs the reference hardware emulator (the stand-in for the
// paper's physical platforms) on the same configuration.
func GroundTruth(cfg Config) (*Result, error) { return core.GroundTruth(cfg) }

// Validate runs both paths and reports the prediction error.
func Validate(cfg Config) (*Comparison, error) { return core.Validate(cfg) }

// TraceCache shares collected traces and fitted operator timers across
// simulations. Assign one store to Config.Cache on every Config of a sweep
// (internal sweeps and cmd/experiments do this automatically): scenarios with
// the same (model, trace batch, GPU) then collect the trace once and reuse it
// read-only, with bit-identical results. See docs/PERFORMANCE.md.
type TraceCache = tracecache.Store

// NewTraceCache returns an empty shared trace cache.
func NewTraceCache() *TraceCache { return tracecache.New() }

// MemoryReport is a per-GPU peak-memory estimate.
type MemoryReport = core.MemoryReport

// MemoryFootprint estimates whether the configured run fits in GPU memory.
func MemoryFootprint(cfg Config) (*MemoryReport, error) {
	return core.MemoryFootprint(cfg)
}

// Candidate is one evaluated deployment strategy.
type Candidate = core.Candidate

// Advise simulates every applicable parallelism strategy for the workload
// and platform, checks memory feasibility, and returns candidates sorted
// fastest-feasible-first (the paper's §8.3 design-space exploration).
func Advise(cfg Config) ([]Candidate, error) { return core.Advise(cfg) }

// CollectTrace produces a stamped single-GPU trace for a model-zoo workload
// on the named GPU ("A40", "A100", "H100") — the tracer-substitute pipeline.
func CollectTrace(model string, batch int, gpuName string) (*Trace, error) {
	spec, err := gpu.SpecByName(gpuName)
	if err != nil {
		return nil, err
	}
	return hwsim.CollectTrace(model, batch, spec)
}

// ReadTrace loads a JSON trace from disk.
func ReadTrace(path string) (*Trace, error) { return trace.ReadFile(path) }

// Models returns every workload the model zoo can build.
func Models() []string { return models.List() }

// CNNModels returns the image-classification workloads.
func CNNModels() []string { return models.CNNs() }

// TransformerModels returns the NLP workloads.
func TransformerModels() []string { return models.Transformers() }

// P1 returns the paper's platform P1: 2×A40 connected with PCIe.
func P1() *Platform { p := gpu.P1; return &p }

// P2 returns the paper's platform P2: 4×A100 connected with NVLink.
func P2() *Platform { p := gpu.P2; return &p }

// P3 returns the paper's platform P3: 8×H100 connected with NVLink.
func P3() *Platform { p := gpu.P3; return &p }

// PlatformByName looks up P1/P2/P3.
func PlatformByName(name string) (*Platform, error) {
	return gpu.PlatformByName(name)
}

// FaultSchedule is a typed set of fault events (link degradations and
// outages, GPU stragglers and failures) plus an optional checkpoint policy.
// Assign one to Config.Faults to inject it; see docs/RESILIENCE.md.
type FaultSchedule = faults.Schedule

// FaultEvent is a single fault in a FaultSchedule.
type FaultEvent = faults.Event

// CheckpointPolicy configures the checkpoint/restart resilience overlay.
type CheckpointPolicy = faults.Checkpoint

// FaultGenConfig parameterizes GenerateFaults.
type FaultGenConfig = faults.GenConfig

// ResilienceResult is the checkpoint/restart overlay's extended-run
// accounting (goodput, replay/restart time), attached to Result.Resilience.
type ResilienceResult = faults.ResilienceResult

// Fault kinds for FaultEvent.Kind.
const (
	LinkDegrade = faults.LinkDegrade
	LinkDown    = faults.LinkDown
	GPUSlowdown = faults.GPUSlowdown
	GPUFail     = faults.GPUFail
)

// LoadFaultSchedule reads a triosim.faults/v1 JSON schedule from disk.
func LoadFaultSchedule(path string) (*FaultSchedule, error) {
	return faults.Load(path)
}

// GenerateFaults materializes a random — but fully seeded and reproducible —
// fault schedule up front, so the simulation itself stays deterministic.
func GenerateFaults(seed int64, cfg FaultGenConfig) (*FaultSchedule, error) {
	return faults.Generate(seed, cfg)
}

// OptimalCheckpointInterval is the Young–Daly approximation
// sqrt(2 × cost × MTBF).
func OptimalCheckpointInterval(cost, mtbf VTime) VTime {
	return faults.OptimalInterval(cost, mtbf)
}

// BuildTopology constructs the interconnect topology Simulate would use for
// the platform — handy for sizing fault schedules (GPU and link counts).
func BuildTopology(p *Platform) *Topology { return core.BuildTopology(p) }

// ServeConfig describes one request-level inference-serving simulation;
// see internal/core and docs/SERVING.md.
type ServeConfig = core.ServeConfig

// ServeResult is a serving simulation's output: request-level latency
// tails, throughput, batching efficiency, and the replay digest.
type ServeResult = core.ServeResult

// ServingConfig is the serving workload: model, scheduler, batch cap, and
// arrivals.
type ServingConfig = serving.Config

// ServingMetrics is the request-level outcome attached to ServeResult.
type ServingMetrics = serving.Metrics

// ServingRequest is one inference request in a serving workload.
type ServingRequest = serving.Request

// ServingArrivalConfig parameterizes the seeded Poisson workload generator.
type ServingArrivalConfig = serving.ArrivalConfig

// Serve runs one request-level inference-serving simulation: seeded
// arrivals, continuous batching with KV-cache accounting, and deterministic
// latency percentiles.
func Serve(cfg ServeConfig) (*ServeResult, error) { return core.Serve(cfg) }

// ServingSchedulers lists the admission policies Serve accepts (fifo,
// priority, sjf).
func ServingSchedulers() []string { return serving.Policies() }

// GenerateServingWorkload draws a seeded Poisson request workload.
func GenerateServingWorkload(cfg ServingArrivalConfig) ([]ServingRequest, error) {
	return serving.GenerateWorkload(cfg)
}

// LoadServingWorkload reads a request trace (JSON array of requests,
// arrival_sec ascending) from disk.
func LoadServingWorkload(path string) ([]ServingRequest, error) {
	return serving.LoadWorkload(path)
}

// NetworkConfig parameterizes the topology builders.
type NetworkConfig = network.Config

// Topology builders for custom interconnects. GPUs are the first nodes;
// a host node provides the input-staging path.
var (
	RingTopology       = network.Ring
	SwitchTopology     = network.Switch
	PCIeTreeTopology   = network.PCIeTree
	MeshTopology       = network.Mesh
	DoubleRingTopology = network.DoubleRing
	ChordRingTopology  = network.RingWithChords
)
